//! The sharded (multi-threaded) variant of the event loop.
//!
//! The single-thread engine in [`crate::simulation`] is the reference
//! semantics; this module reproduces it *bit for bit* across worker
//! threads using conservative time-window synchronization:
//!
//! * Nodes (with their NICs, HBM, pacer queues and fabric ports) are
//!   partitioned contiguously across shards by
//!   [`mgpu_sim::routing::ShardMap`]; switches ride with their first
//!   attached GPU. Every resource has exactly one owning shard, so the
//!   hot path has **no shared mutable state** — shards only exchange
//!   messages at window barriers.
//! * Every cross-shard event edge (control messages, block hops, ACKs)
//!   crosses a link with propagation latency at least `L =
//!   config.link_latency` (asserted against
//!   [`mgpu_sim::topology::Topology::min_crossing_latency`]). `L` is the
//!   *lookahead*: a message created inside the window `[T, T + L)` fires
//!   at or after `T + L`, i.e. never inside the window. Shards therefore
//!   run freely within each window and exchange outboxes at the barrier.
//! * Events are ordered by creation-lineage [`Stamp`]s: same-shard pairs
//!   compare by the shard's private creation counter (exactly the local
//!   slice of the single-thread FIFO order), cross-shard pairs by
//!   creation cycle and then recursively by the creating events' own
//!   stamps, bottoming out at globally agreed root ranks. This
//!   reproduces the single-thread `(fire, seq)` pop order *exactly* —
//!   including same-cycle issue cadences that stay in creation-cycle
//!   lockstep across shards for arbitrarily many generations (verified
//!   by the golden-parity matrix and the shard-invariance property test;
//!   see DESIGN.md §11).
//!
//! Observability runs with per-shard collectors scoped to each shard's
//! ports; [`TimeSeriesCollector::merge_shards`] re-interleaves samples
//! and trace records into single-thread order. Adversarial runs force
//! one shard (the wire harness is a single functional pipeline), as do
//! sampling intervals shorter than the lookahead.

use crate::fabric::{Fabric, HopOutcome, Transit};
use crate::flow::{Reject, WakeupLadder};
use crate::harness::WireHarness;
use crate::metrics::RunReport;
use crate::nic_pool::NicPool;
use crate::pacing::IssuePacer;
use crate::simulation::{drain_open_batches, Simulation};
use crate::timeseries::TimeSeriesCollector;
use mgpu_sim::dram::Hbm;
use mgpu_sim::events::{ShardQueue, Stamp};
use mgpu_sim::link::{TrafficClass, TrafficTotals, WireParts};
use mgpu_sim::routing::ShardMap;
use mgpu_types::{ByteSize, Cycle, DenseNodeMap, Duration, NodeId, PairId, SystemConfig};
use mgpu_workloads::Request;
use std::collections::{BTreeMap, VecDeque};
use std::sync::{Arc, Barrier, Mutex};

/// Self-describing request token carried by every per-request event.
///
/// The single-thread engine indexes one global `pending` vector; shards
/// cannot share one, so the token carries the routing facts every handler
/// needs (`requester`, `owner`, original block count) plus the index into
/// the *requester shard's* pending table for the completion bookkeeping.
/// `blocks` is safe to carry by value: no `BlockDone` for a request can
/// precede its `ReqArrive`/`DataReady`, so the remaining count at those
/// handlers always equals the original.
#[derive(Debug, Clone, Copy)]
struct ReqToken {
    idx: u32,
    requester: NodeId,
    owner: NodeId,
    blocks: u32,
}

/// Deferred-send payload of the sharded engine (see
/// [`crate::nic_pool::DeferredBlock`] for the single-thread equivalent).
type Deferred = (ReqToken, WireParts, u64);

/// A cross-shard message: an event plus its fire time and stamp.
type Msg = (Cycle, Stamp, SEv);

/// Sharded mirror of [`crate::simulation`]'s event set, with
/// self-describing tokens instead of global pending indices.
enum SEv {
    /// Attempt to issue the requester's next queued request.
    TryIssue(NodeId),
    /// Request packet arrived at the owner.
    ReqArrive(ReqToken),
    /// HBM produced the data at the owner.
    DataReady(ReqToken),
    /// An encrypted block is ready for the owner's egress port.
    BlockEgress {
        tok: ReqToken,
        parts: WireParts,
        counter: u64,
        acks: bool,
    },
    /// The block's bytes reached the ingress of the next waypoint.
    BlockIngress {
        tok: ReqToken,
        transit: Transit,
        counter: u64,
        acks: bool,
    },
    /// The block cleared the destination ingress; receive-side crypto.
    BlockRecv {
        tok: ReqToken,
        counter: u64,
        acks: bool,
    },
    /// The block's data became usable at the requester.
    BlockDone { tok: ReqToken, acks: bool },
    /// An ACK reached the original sender: free a replay-table entry.
    AckArrive(NodeId),
    /// Check a node's batcher for timeout flushes.
    FlushCheck(NodeId),
    /// A flushed batch's trailer arrived: the receiver ACKs it.
    TrailerAck { receiver: NodeId, owner: NodeId },
    /// Observability boundary replica. Every shard runs one in lockstep
    /// (sampling its own scope); only shard 0 counts it as an event.
    Sample,
}

impl SEv {
    fn name(&self) -> &'static str {
        match self {
            SEv::TryIssue(_) => "TryIssue",
            SEv::ReqArrive(_) => "ReqArrive",
            SEv::DataReady(_) => "DataReady",
            SEv::BlockEgress { .. } => "BlockEgress",
            SEv::BlockIngress { .. } => "BlockIngress",
            SEv::BlockRecv { .. } => "BlockRecv",
            SEv::BlockDone { .. } => "BlockDone",
            SEv::AckArrive(_) => "AckArrive",
            SEv::FlushCheck(_) => "FlushCheck",
            SEv::TrailerAck { .. } => "TrailerAck",
            SEv::Sample => "Sample",
        }
    }
}

/// Synchronization state shared by all shards of one run. Every field is
/// only touched between windows (Mutex, never contended on the hot path).
struct Shared {
    /// Earliest pending fire time per shard, published before barrier A.
    mins: Vec<Mutex<Option<Cycle>>>,
    /// `(replica_popped, live)` per shard, published after each window:
    /// whether the shard popped its Sample replica, and whether any work
    /// remained at that pop (local queue or outbound messages).
    winfo: Vec<Mutex<(bool, bool)>>,
    /// `mail[src][dst]`: messages created by `src` for `dst`, deposited
    /// after the window, drained by `dst` before the next.
    mail: Vec<Vec<Mutex<Vec<Msg>>>>,
    barrier: Barrier,
    /// Conservative lookahead: minimum latency of any cross-shard edge.
    lookahead: Duration,
}

/// Per-request completion bookkeeping local to the requester's shard.
struct PendingSlot {
    blocks_left: u32,
    issued_at: Cycle,
    arrived_at: Cycle,
    deadline: Option<Cycle>,
    first_byte: Option<Cycle>,
}

/// Counters each shard accumulates for the merged [`RunReport`].
struct Stats {
    completion: Cycle,
    sum_latency: Duration,
    latency: crate::metrics::LatencyReport,
    last_issue: Cycle,
    requests_done: u64,
    blocks_done: u64,
    acks_sent: u64,
    events_processed: u64,
}

/// One worker shard: the owned slice of every engine resource plus its
/// own stamped event queue.
struct Shard<'a> {
    id: u16,
    secure: bool,
    batching: bool,
    link_latency: Duration,
    sample_every: Duration,
    wire: mgpu_secure::protocol::WireFormat,
    map: &'a ShardMap,
    owned: &'a [NodeId],
    fabric: Fabric,
    hbm: DenseNodeMap<Hbm>,
    pool: NicPool<Deferred>,
    pacer: IssuePacer,
    armed: WakeupLadder,
    queue: ShardQueue<SEv>,
    /// Shard-local event creation counter (the `seq` of new stamps).
    seq: u64,
    pending: Vec<PendingSlot>,
    collector: Option<TimeSeriesCollector>,
    /// Messages for other shards created during the current window.
    outbox: Vec<Vec<Msg>>,
    /// The next Sample replica, reserved at this boundary's pop and
    /// injected (or dropped) once all shards' liveness is known.
    pending_replica: Option<(Cycle, Stamp)>,
    /// `(replica_popped, live)` for the current window.
    replica_flags: (bool, bool),
    stats: Stats,
}

impl Shard<'_> {
    /// The shard whose state `ev`'s handler touches.
    fn dest_of(&self, ev: &SEv) -> u16 {
        match ev {
            SEv::TryIssue(node) => self.map.of_node(*node),
            SEv::ReqArrive(tok) | SEv::DataReady(tok) => self.map.of_node(tok.owner),
            SEv::BlockEgress { tok, .. } => self.map.of_node(tok.owner),
            SEv::BlockIngress { transit, .. } => {
                let route = self.fabric.topology().routes().route(transit.pair());
                self.map.of_waypoint(route[transit.hop()])
            }
            SEv::BlockRecv { tok, .. } | SEv::BlockDone { tok, .. } => {
                self.map.of_node(tok.requester)
            }
            SEv::AckArrive(owner) | SEv::FlushCheck(owner) => self.map.of_node(*owner),
            SEv::TrailerAck { receiver, .. } => self.map.of_node(*receiver),
            SEv::Sample => self.id,
        }
    }

    /// Schedules `ev` at `fire`, stamped as created by the handler of the
    /// event stamped `parent` firing at `now` — locally when this shard
    /// owns the destination state, into the outbox otherwise.
    fn sched(&mut self, parent: &Arc<Stamp>, now: Cycle, fire: Cycle, ev: SEv) {
        let stamp = Stamp::child(parent, now, self.id, self.seq);
        self.seq += 1;
        let dst = self.dest_of(&ev);
        if dst == self.id {
            self.queue.schedule(fire, stamp, ev);
        } else {
            self.outbox[usize::from(dst)].push((fire, stamp, ev));
        }
    }

    /// Handles one popped event — a transliteration of the single-thread
    /// match arms with pending-index lookups replaced by token fields.
    #[allow(clippy::too_many_lines)]
    fn handle(&mut self, now: Cycle, stamp: Stamp, ev: SEv) {
        // Children share the handled event's stamp as their lineage
        // parent; one allocation per pop, shared by every child.
        let stamp = Arc::new(stamp);
        let stamp = &stamp;
        let is_sample = matches!(ev, SEv::Sample);
        if let Some(col) = self.collector.as_mut() {
            col.set_record_key(now, Stamp::clone(stamp));
            if !is_sample || self.id == 0 {
                col.note_event(ev.name());
            }
        }
        if !is_sample || self.id == 0 {
            self.stats.events_processed += 1;
        }
        match ev {
            SEv::TryIssue(node) => {
                self.armed.fired(node, now);
                match self.pacer.poll(node, now) {
                    Err(Reject::Drained | Reject::AwaitCredit) => {}
                    Err(Reject::NotBefore(avail)) => {
                        if self.armed.arm(node, avail) {
                            self.sched(stamp, now, avail, SEv::TryIssue(node));
                        }
                    }
                    Ok(request) => {
                        self.stats.last_issue = self.stats.last_issue.max(now);
                        let tok = ReqToken {
                            idx: u32::try_from(self.pending.len()).expect("pending fits u32"),
                            requester: request.requester,
                            owner: request.target,
                            blocks: request.kind.blocks(),
                        };
                        self.pending.push(PendingSlot {
                            blocks_left: tok.blocks,
                            issued_at: now,
                            arrived_at: request.available_at,
                            deadline: request.deadline,
                            first_byte: None,
                        });
                        let to_owner = PairId::new(request.requester, request.target);
                        let arrive = self.fabric.transmit_ctrl(
                            to_owner,
                            now,
                            &[(self.wire.request, TrafficClass::Data)],
                        );
                        self.sched(stamp, now, arrive, SEv::ReqArrive(tok));
                        self.sched(stamp, now, now, SEv::TryIssue(node));
                    }
                }
            }
            SEv::ReqArrive(tok) => {
                let payload = if tok.blocks > 1 {
                    ByteSize::PAGE
                } else {
                    ByteSize::CACHELINE
                };
                let data_ready = self
                    .hbm
                    .get_mut(tok.owner)
                    .expect("owner within shard")
                    .access(now, payload);
                self.sched(stamp, now, data_ready, SEv::DataReady(tok));
            }
            SEv::DataReady(tok) => {
                if self.secure {
                    for _ in 0..tok.blocks {
                        let prep = self.pool.prepare_send(tok.owner, now, tok.requester);
                        if prep.acks && self.batching {
                            if let Some(col) = self.collector.as_mut() {
                                col.record_batch_close(now, tok.owner, true);
                            }
                        }
                        self.sched(
                            stamp,
                            now,
                            prep.ready,
                            SEv::BlockEgress {
                                tok,
                                parts: prep.parts,
                                counter: prep.counter,
                                acks: prep.acks,
                            },
                        );
                    }
                    if let Some(deadline) = self.pool.next_flush_deadline(tok.owner) {
                        self.sched(stamp, now, deadline.max(now), SEv::FlushCheck(tok.owner));
                    }
                } else {
                    for _ in 0..tok.blocks {
                        self.sched(
                            stamp,
                            now,
                            now,
                            SEv::BlockEgress {
                                tok,
                                parts: WireParts::of(
                                    self.wire.header + self.wire.block,
                                    TrafficClass::Data,
                                ),
                                counter: 0,
                                acks: false,
                            },
                        );
                    }
                }
            }
            SEv::BlockEgress {
                tok,
                parts,
                counter,
                acks,
            } => {
                let pair = PairId::new(tok.owner, tok.requester);
                // Mirror of the single-thread engine: egress admission
                // precedes the ACK reservation so a credit retry never
                // double-reserves. The owner shard holds both the egress
                // server and the ACK window, so the decision is local.
                if let Err(busy) = self.fabric.egress_ready(pair, now) {
                    self.sched(
                        stamp,
                        now,
                        busy.retry_at,
                        SEv::BlockEgress {
                            tok,
                            parts,
                            counter,
                            acks,
                        },
                    );
                    return;
                }
                if acks && self.pool.admit_ack(tok.owner).is_err() {
                    self.pool
                        .defer(tok.owner, u64::from(tok.idx), (tok, parts, counter));
                    return;
                }
                let (at, transit) = self.fabric.begin(pair, now, parts);
                self.sched(
                    stamp,
                    now,
                    at,
                    SEv::BlockIngress {
                        tok,
                        transit,
                        counter,
                        acks,
                    },
                );
            }
            SEv::BlockIngress {
                tok,
                transit,
                counter,
                acks,
            } => match self.fabric.advance(transit, now) {
                HopOutcome::Forwarded { at, transit } => {
                    self.sched(
                        stamp,
                        now,
                        at,
                        SEv::BlockIngress {
                            tok,
                            transit,
                            counter,
                            acks,
                        },
                    );
                }
                HopOutcome::Delivered { at } => {
                    self.sched(stamp, now, at, SEv::BlockRecv { tok, counter, acks });
                }
                HopOutcome::Blocked { retry_at, transit } => {
                    // The retry stays on this waypoint (same hop index),
                    // hence on this shard — no cross-shard credit peeking.
                    self.sched(
                        stamp,
                        now,
                        retry_at,
                        SEv::BlockIngress {
                            tok,
                            transit,
                            counter,
                            acks,
                        },
                    );
                }
            },
            SEv::BlockRecv { tok, counter, acks } => {
                let usable = if self.secure {
                    self.pool.receive(tok.requester, now, tok.owner, counter)
                } else {
                    now
                };
                self.sched(stamp, now, usable, SEv::BlockDone { tok, acks });
            }
            SEv::BlockDone { tok, acks } => {
                self.stats.blocks_done += 1;
                if acks {
                    let ack = self.pool.ack_bytes(tok.requester);
                    if ack > ByteSize::ZERO {
                        let back = self.fabric.transmit_ctrl(
                            PairId::new(tok.requester, tok.owner),
                            now,
                            &[(ack, TrafficClass::Ack)],
                        );
                        self.stats.acks_sent += 1;
                        self.sched(stamp, now, back, SEv::AckArrive(tok.owner));
                    } else {
                        self.sched(
                            stamp,
                            now,
                            now + self.link_latency,
                            SEv::AckArrive(tok.owner),
                        );
                    }
                }
                let slot = &mut self.pending[tok.idx as usize];
                if slot.first_byte.is_none() {
                    slot.first_byte = Some(now);
                }
                slot.blocks_left -= 1;
                if slot.blocks_left == 0 {
                    let issued_at = slot.issued_at;
                    self.stats.completion = self.stats.completion.max(now);
                    self.stats.sum_latency += now.saturating_since(issued_at);
                    self.stats.latency.record(
                        slot.arrived_at,
                        issued_at,
                        slot.first_byte.expect("block done implies first byte"),
                        now,
                        slot.deadline,
                    );
                    self.stats.requests_done += 1;
                    self.pacer.complete(tok.requester);
                    self.sched(stamp, now, now, SEv::TryIssue(tok.requester));
                }
            }
            SEv::AckArrive(owner) => {
                if let Some((tok, parts, counter)) = self.pool.release_ack(owner) {
                    self.sched(
                        stamp,
                        now,
                        now,
                        SEv::BlockEgress {
                            tok,
                            parts,
                            counter,
                            acks: true,
                        },
                    );
                }
            }
            SEv::FlushCheck(owner) => {
                let flushed = self.pool.flush_due(owner, now);
                for (dst, mac_bytes) in flushed {
                    if let Some(col) = self.collector.as_mut() {
                        col.record_batch_close(now, owner, false);
                    }
                    self.pool.overdraw_ack(owner);
                    let arrive = self.fabric.transmit_ctrl(
                        PairId::new(owner, dst),
                        now,
                        &[(mac_bytes, TrafficClass::Mac)],
                    );
                    self.sched(
                        stamp,
                        now,
                        arrive,
                        SEv::TrailerAck {
                            receiver: dst,
                            owner,
                        },
                    );
                }
                if let Some(deadline) = self.pool.next_flush_deadline(owner) {
                    self.sched(stamp, now, deadline.max(now), SEv::FlushCheck(owner));
                }
            }
            SEv::TrailerAck { receiver, owner } => {
                let ack = self.pool.ack_bytes(receiver);
                if ack > ByteSize::ZERO {
                    let back = self.fabric.transmit_ctrl(
                        PairId::new(receiver, owner),
                        now,
                        &[(ack, TrafficClass::Ack)],
                    );
                    self.stats.acks_sent += 1;
                    self.sched(stamp, now, back, SEv::AckArrive(owner));
                } else {
                    self.sched(stamp, now, now + self.link_latency, SEv::AckArrive(owner));
                }
            }
            SEv::Sample => {
                self.pool.advance_all(now);
                if let Some(col) = self.collector.as_mut() {
                    col.sample(now, &self.pool, &self.fabric);
                }
                // Liveness at this boundary: anything left locally or
                // heading to another shard. ORed across shards it equals
                // the single-thread `!events.is_empty()`: any event still
                // held by a remote queue traces back through its creator
                // chain to some shard's local event or outbound message.
                let live = !self.queue.is_empty() || self.outbox.iter().any(|o| !o.is_empty());
                // Reserve the next replica's stamp now (the position the
                // single-thread reschedule would take) — whether it is
                // injected depends on every shard's liveness, known only
                // at the barrier.
                let next_stamp = Stamp::child(stamp, now, self.id, self.seq);
                self.seq += 1;
                self.pending_replica = Some((now + self.sample_every, next_stamp));
                self.replica_flags = (true, live);
            }
        }
    }
}

/// The per-shard worker: conservative window loop between barriers.
fn worker(shard: &mut Shard<'_>, shared: &Shared) {
    let me = usize::from(shard.id);
    loop {
        // Phase A: resolve the replica reserved at the last boundary (all
        // shards popped theirs in the same window, so last window's flags
        // are complete), drain the inbox column, publish the local
        // minimum.
        if let Some((fire, stamp)) = shard.pending_replica.take() {
            let any_live = shared
                .winfo
                .iter()
                .any(|w| *w.lock().expect("winfo lock") == (true, true));
            if any_live {
                shard.queue.schedule(fire, stamp, SEv::Sample);
            }
        }
        for src in 0..shared.mins.len() {
            let mut inbox = shared.mail[src][me].lock().expect("mailbox lock");
            for (fire, stamp, ev) in inbox.drain(..) {
                shard.queue.schedule(fire, stamp, ev);
            }
        }
        *shared.mins[me].lock().expect("mins lock") = shard.queue.peek_time();
        shared.barrier.wait();

        // Phase B: every shard computes the same global minimum from the
        // same published values, so all agree on the window (or on
        // termination) without a coordinator.
        let global_min = shared
            .mins
            .iter()
            .filter_map(|m| *m.lock().expect("mins lock"))
            .min();
        let Some(start) = global_min else {
            break;
        };
        let window_end = start + shared.lookahead;
        shard.replica_flags = (false, false);
        while let Some((now, stamp, ev)) = shard.queue.pop_before(window_end) {
            shard.handle(now, stamp, ev);
        }
        for dst in 0..shared.mins.len() {
            if dst == me || shard.outbox[dst].is_empty() {
                continue;
            }
            let mut out = std::mem::take(&mut shard.outbox[dst]);
            shared.mail[me][dst]
                .lock()
                .expect("mailbox lock")
                .append(&mut out);
        }
        *shared.winfo[me].lock().expect("winfo lock") = shard.replica_flags;
        shared.barrier.wait();
    }
}

/// Runs `sim`'s request streams on `shards` worker threads and returns a
/// report bit-for-bit identical to the single-thread engine's.
pub(crate) fn run(
    sim: &Simulation,
    queues: BTreeMap<NodeId, VecDeque<Request>>,
    shards: u16,
) -> RunReport {
    let cfg: &SystemConfig = sim.config();
    let secure = sim.secure();
    let sample_every = cfg.security.dynamic.interval;
    let observability = secure && cfg.observability.enabled;
    // Root events exist iff any requester has a queue; all shards need
    // this global fact to arm their boundary replicas in lockstep.
    let any_roots = !queues.is_empty();
    let lookahead = cfg.link_latency;

    let template = Fabric::new(cfg);
    debug_assert!(
        template.topology().min_crossing_latency() >= lookahead,
        "a cross-shard edge is faster than the conservative lookahead"
    );
    let map = ShardMap::new(template.topology().routes(), cfg.gpu_count, shards);
    let switch_count = template.topology().routes().switch_count();

    let mut shard_queues: Vec<BTreeMap<NodeId, VecDeque<Request>>> =
        (0..shards).map(|_| BTreeMap::new()).collect();
    for (node, q) in queues {
        shard_queues[usize::from(map.of_node(node))].insert(node, q);
    }
    // Globally agreed root ranks: the single-thread engine hands the
    // first sequence numbers to one TryIssue per requester (nodes
    // ascending — the contiguous partition keeps per-shard prefixes
    // intact), then to the first Sample. Cross-shard stamp comparisons
    // bottom out at these ranks, and every shard's private counter
    // starts above all of them so loop-created events sort after roots.
    let root_base: Vec<u64> = shard_queues
        .iter()
        .scan(0u64, |acc, q| {
            let base = *acc;
            *acc += q.len() as u64;
            Some(base)
        })
        .collect();
    let total_roots: u64 = shard_queues.iter().map(|q| q.len() as u64).sum();
    let seq_start = total_roots + u64::from(shards);

    let slots_per_gpu = sim.slots_per_gpu();
    let mut workers: Vec<Shard<'_>> = Vec::with_capacity(usize::from(shards));
    for (s, queues) in shard_queues.into_iter().enumerate() {
        let s16 = u16::try_from(s).expect("shard id fits u16");
        let owned = map.nodes_of(s16);
        let hbm: DenseNodeMap<Hbm> = owned
            .iter()
            .map(|&n| (n, Hbm::new(512, cfg.dram_latency)))
            .collect();
        let pacer = if sim.is_open_loop() {
            IssuePacer::open_loop(queues, slots_per_gpu)
        } else {
            IssuePacer::new(queues, slots_per_gpu)
        };
        let armed = WakeupLadder::new(pacer.nodes());
        let collector = observability.then(|| {
            let node_mask: Vec<bool> = (0..cfg.node_count())
                .map(|raw| {
                    map.of_node(NodeId::from_raw(u16::try_from(raw).expect("node id"))) == s16
                })
                .collect();
            let switch_mask: Vec<bool> = (0..switch_count)
                .map(|sw| map.of_switch(sw) == s16)
                .collect();
            TimeSeriesCollector::new(&cfg.observability, sample_every)
                .with_scope(node_mask, switch_mask)
        });
        let mut shard = Shard {
            id: s16,
            secure,
            batching: cfg.security.batching.enabled,
            link_latency: cfg.link_latency,
            sample_every,
            wire: mgpu_secure::protocol::WireFormat::default(),
            map: &map,
            owned,
            fabric: Fabric::new(cfg),
            hbm,
            pool: NicPool::for_nodes(cfg, secure, owned),
            pacer,
            armed,
            queue: ShardQueue::new(),
            seq: seq_start,
            pending: Vec::new(),
            collector,
            outbox: (0..shards).map(|_| Vec::new()).collect(),
            pending_replica: None,
            replica_flags: (false, false),
            stats: Stats {
                completion: Cycle::ZERO,
                sum_latency: Duration::ZERO,
                latency: crate::metrics::LatencyReport::default(),
                last_issue: Cycle::ZERO,
                requests_done: 0,
                blocks_done: 0,
                acks_sent: 0,
                events_processed: 0,
            },
        };
        // Root events with their global ranks: this shard's TryIssue
        // roots occupy the contiguous rank range starting at
        // `root_base[s]`; the boundary replicas all stand in for the one
        // single-thread Sample root (rank `total_roots`), offset by shard
        // so the merged trace keys order replica records shard-ascending
        // (= node-ascending, matching single-thread emission).
        for (k, node) in shard
            .pacer
            .nodes()
            .collect::<Vec<_>>()
            .into_iter()
            .enumerate()
        {
            let stamp = Stamp::root(s16, root_base[s] + k as u64);
            shard
                .queue
                .schedule(Cycle::ZERO, stamp, SEv::TryIssue(node));
        }
        if observability && any_roots {
            let stamp = Stamp::root(s16, total_roots + u64::from(s16));
            shard
                .queue
                .schedule(Cycle::ZERO + sample_every, stamp, SEv::Sample);
        }
        workers.push(shard);
    }

    let shared = Shared {
        mins: (0..shards).map(|_| Mutex::new(None)).collect(),
        winfo: (0..shards).map(|_| Mutex::new((false, false))).collect(),
        mail: (0..shards)
            .map(|_| (0..shards).map(|_| Mutex::new(Vec::new())).collect())
            .collect(),
        barrier: Barrier::new(usize::from(shards)),
        lookahead,
    };
    std::thread::scope(|scope| {
        let shared = &shared;
        for shard in &mut workers {
            scope.spawn(move || worker(shard, shared));
        }
    });

    // Coordinator: fold the shards back into the single-thread shapes.
    let mut completion = Cycle::ZERO;
    let mut sum_latency = Duration::ZERO;
    let mut latency = crate::metrics::LatencyReport::default();
    let mut last_issue = Cycle::ZERO;
    let mut requests_done = 0u64;
    let mut blocks_done = 0u64;
    let mut acks_sent = 0u64;
    let mut events_processed = 0u64;
    let mut traffic = TrafficTotals::default();
    for shard in &workers {
        completion = completion.max(shard.stats.completion);
        last_issue = last_issue.max(shard.stats.last_issue);
        sum_latency += shard.stats.sum_latency;
        latency.merge(&shard.stats.latency);
        requests_done += shard.stats.requests_done;
        blocks_done += shard.stats.blocks_done;
        acks_sent += shard.stats.acks_sent;
        events_processed += shard.stats.events_processed;
        traffic.merge(&shard.fabric.traffic_totals());
    }

    let mut collector = observability.then(|| {
        TimeSeriesCollector::merge_shards(
            &cfg.observability,
            sample_every,
            workers
                .iter_mut()
                .map(|s| s.collector.take().expect("collector present"))
                .collect(),
        )
    });

    let mut pool: NicPool = NicPool::new(cfg, secure);
    for shard in &mut workers {
        pool.absorb(&mut shard.pool, shard.owned);
    }

    if secure {
        // End-of-run batch drain on a fresh fabric: control-VC byte
        // accounting is independent of port state, and the post-run
        // arrival times are discarded, so the totals match the
        // single-thread drain on the live fabric exactly.
        let mut drain_fabric = Fabric::new(cfg);
        let mut harness: Option<WireHarness> = None;
        drain_open_batches(
            &mut pool,
            &mut drain_fabric,
            &mut harness,
            &mut collector,
            completion,
            &mut acks_sent,
        );
        traffic.merge(&drain_fabric.traffic_totals());
    }

    let (otp, pads_issued, mean_batch_occupancy) = pool.otp_summary();
    latency.finish();

    RunReport {
        benchmark: sim.benchmark(),
        scheme: cfg.security.scheme,
        batching: cfg.security.batching.enabled,
        total_cycles: completion.saturating_since(Cycle::ZERO),
        requests: requests_done,
        blocks: blocks_done,
        traffic,
        otp,
        acks_sent,
        pads_issued,
        mean_batch_occupancy,
        sum_request_latency: sum_latency,
        latency,
        last_issue: last_issue.saturating_since(Cycle::ZERO),
        tampered_crossings: 0,
        security: Default::default(),
        timeline: collector.map(TimeSeriesCollector::finish),
        events_processed,
    }
}
