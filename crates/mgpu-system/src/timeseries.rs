//! Interval-resolved observability for the dynamic OTP repartitioner.
//!
//! The paper's headline mechanism — EWMA-driven repartitioning every
//! `T` cycles (Formulas 1–4, §IV-B) — is invisible in end-of-run
//! aggregates. [`TimeSeriesCollector`] samples the system at every
//! repartition boundary: per-node EWMA direction weight `S`, per-peer
//! send/recv window allocations, OTP hit/partial/miss deltas, batch
//! occupancy, replay (ACK) window headroom, and per-port fabric byte
//! deltas and queue depths. A bounded ring buffer additionally traces
//! discrete protocol events (repartitions, batch closes, ACK timeouts,
//! adversary detections), and per-event-type scope counters account for
//! the simulation hot path.
//!
//! # Timing neutrality
//!
//! Collection is opt-in ([`mgpu_types::ObservabilityConfig`]) and must
//! not perturb the simulated machine. The sampler forces each scheme's
//! interval processing *at* the boundary (instead of lazily at the next
//! send/receive), which is timing-equivalent: window targets are always
//! computed against the boundary cycle, boundary processing is
//! idempotent, and pad readiness depends only on the boundary, not on
//! when it is processed. The golden-parity suite pins this — cycles,
//! traffic, OTP statistics and ACK counts are bit-identical with
//! observability on or off. The one intentional exception is
//! `pads_issued`: eager boundary processing issues pads for trailing
//! boundaries that an idle node's lazy path would never reach, so that
//! work counter may read slightly higher on observed runs.
//!
//! The timeline is fully deterministic (no wall-clock anywhere), so
//! observed runs stay reproducible run-to-run.

use crate::fabric::Fabric;
use crate::nic_pool::NicPool;
use mgpu_secure::adversary::{FaultKind, SecurityEvent};
use mgpu_sim::events::Stamp;
use mgpu_sim::stats::percentile;
use mgpu_types::{Cycle, Duration, NodeId, ObservabilityConfig};
use std::collections::{BTreeMap, VecDeque};
use std::fmt::Write as _;

/// One per-node sample taken at a repartition-interval boundary.
#[derive(Debug, Clone, PartialEq)]
pub struct IntervalSample {
    /// Boundary cycle the sample was taken at.
    pub cycle: Cycle,
    /// The sampled node.
    pub node: NodeId,
    /// EWMA send-direction weight `S_i`; `None` for non-adaptive schemes.
    pub send_weight: Option<f64>,
    /// Cumulative repartitions completed by this node's scheme.
    pub rebalances: u64,
    /// Per-peer send-window allocation (pads); empty for non-adaptive
    /// schemes.
    pub send_alloc: BTreeMap<NodeId, u32>,
    /// Per-peer recv-window allocation (pads).
    pub recv_alloc: BTreeMap<NodeId, u32>,
    /// OTP pad hits this interval (send + recv).
    pub otp_hits: u64,
    /// OTP partial-latency pads this interval.
    pub otp_partials: u64,
    /// OTP misses this interval.
    pub otp_misses: u64,
    /// Batches closed full this interval.
    pub batch_closed_full: u64,
    /// Batches closed by flush timeout this interval.
    pub batch_closed_flush: u64,
    /// Running mean blocks per closed batch (cumulative).
    pub batch_occupancy: f64,
    /// Free replay-table (ACK window) entries; negative when trailer
    /// flushes transiently overdraw the table.
    pub ack_window_free: i64,
    /// Cumulative ACK-window credit grants the node's gate has issued
    /// (arbitration admissions, including overdraws).
    pub ack_window_grants: u64,
}

impl IntervalSample {
    /// Pad hit rate over this interval's OTP operations, if any occurred.
    #[must_use]
    pub fn hit_rate(&self) -> Option<f64> {
        let total = self.otp_hits + self.otp_partials + self.otp_misses;
        if total == 0 {
            None
        } else {
            Some(self.otp_hits as f64 / total as f64)
        }
    }
}

/// One per-fabric-port sample taken at an interval boundary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FabricSample {
    /// Boundary cycle the sample was taken at.
    pub cycle: Cycle,
    /// Egress port label (`"gpu1"`, `"switch0"`, ...).
    pub port: String,
    /// Bytes that crossed the port since the previous sample.
    pub bytes_delta: u64,
    /// True occupancy at the boundary: grants (both VCs) whose service
    /// had not yet completed when the sample was taken — queued entries,
    /// not time. (This field used to carry the serialization backlog in
    /// cycles, which now lives in [`FabricSample::busy_horizon`].)
    pub queue_depth: u64,
    /// Cycles until the port's serializer frees (its busy-time backlog
    /// at the boundary). The old, mislabeled `queue_depth` value.
    pub busy_horizon: u64,
    /// Data-VC credits held at the boundary: grants whose service had
    /// not yet completed when the sample was taken.
    pub data_vc_occupancy: u64,
    /// Ctrl-VC credits held at the boundary. Egress ports carry only
    /// data traffic, so this stays zero today; it is sampled so a future
    /// shared-port topology needs no schema change.
    pub ctrl_vc_occupancy: u64,
    /// Cumulative arbitration grants the port's timed server has issued
    /// across both VCs.
    pub grants: u64,
    /// Control-VC bytes granted on pairs leaving this port since the
    /// previous sample. Control messages ride per-pair VCs, but they all
    /// share the node's physical port, so this sum is what a tap on the
    /// port observes. Node ports only; switch rows read 0 (control VCs
    /// are end-to-end). Chaff padding is included — on the wire it is
    /// indistinguishable from real metadata.
    pub ctrl_bytes_delta: u64,
    /// Cumulative control-VC grants on pairs leaving this port (node
    /// ports only; switch rows read 0).
    pub ctrl_grants: u64,
}

/// A discrete protocol event captured in the bounded trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceEvent {
    /// A node's scheme completed one or more repartitions.
    Repartition {
        /// The repartitioning node.
        node: NodeId,
        /// Its cumulative repartition count after the event.
        rebalances: u64,
    },
    /// A metadata batch closed.
    BatchClose {
        /// The sending node whose batch closed.
        node: NodeId,
        /// `true` when it filled; `false` when the flush timeout fired.
        full: bool,
    },
    /// A defense fired only after the sender's ACK timeout expired.
    AckTimeout {
        /// The injected fault that the timeout surfaced.
        kind: FaultKind,
        /// Sender of the affected stream.
        src: NodeId,
        /// Receiver of the affected stream.
        dst: NodeId,
    },
    /// A defense detected an adversary injection inline.
    AdversaryDetection {
        /// The injected fault kind.
        kind: FaultKind,
        /// Sender of the affected stream.
        src: NodeId,
        /// Receiver of the affected stream.
        dst: NodeId,
    },
}

/// A trace event with its timestamp.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceRecord {
    /// Cycle the event occurred (for detections: the detection time).
    pub cycle: Cycle,
    /// The event.
    pub event: TraceEvent,
}

/// Summary statistics folded into `BENCH_repro.json`.
#[derive(Debug, Clone, PartialEq)]
pub struct TimelineSummary {
    /// Number of interval samples taken.
    pub intervals: usize,
    /// Trace events retained in the ring buffer.
    pub trace_events: usize,
    /// Trace events evicted because the ring filled.
    pub events_dropped: u64,
    /// Median per-interval OTP hit rate.
    pub hit_rate_p50: Option<f64>,
    /// 90th-percentile per-interval OTP hit rate.
    pub hit_rate_p90: Option<f64>,
    /// Median fabric-port queue depth at boundaries (pending entries).
    pub queue_depth_p50: Option<f64>,
    /// 90th-percentile fabric-port queue depth at boundaries (pending
    /// entries).
    pub queue_depth_p90: Option<f64>,
    /// Median fabric-port busy horizon at boundaries (cycles until the
    /// serializer frees).
    pub busy_horizon_p50: Option<f64>,
    /// 90th-percentile fabric-port busy horizon at boundaries (cycles).
    pub busy_horizon_p90: Option<f64>,
}

/// The finished observability record attached to a
/// [`crate::RunReport`].
#[derive(Debug, Clone, PartialEq)]
pub struct Timeline {
    /// Sampling interval (the repartition interval `T`).
    pub interval: Duration,
    /// Per-node interval samples, in (cycle, node) order.
    pub samples: Vec<IntervalSample>,
    /// Per-port fabric samples, in (cycle, port) order.
    pub fabric: Vec<FabricSample>,
    /// Bounded protocol-event trace (oldest events evicted first).
    pub events: Vec<TraceRecord>,
    /// Events evicted from the trace ring.
    pub events_dropped: u64,
    /// Events processed by the simulation loop, per event type.
    pub scope_counts: BTreeMap<&'static str, u64>,
}

/// Formats an `f64` as a JSON value (`null` for non-finite, whose bare
/// `Display` form would not parse as JSON).
fn json_f64(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "null".to_string()
    }
}

fn node_label(n: NodeId) -> String {
    n.to_string().to_ascii_lowercase()
}

/// Sort key reproducing the single-thread fabric-row emission order
/// within one boundary: node-egress ports by node id, then switch-egress
/// ports by switch id.
fn port_order(label: &str) -> (u8, u16) {
    if label == "cpu" {
        (0, 0)
    } else if let Some(id) = label.strip_prefix("gpu") {
        (0, id.parse().unwrap_or(u16::MAX))
    } else if let Some(id) = label.strip_prefix("switch") {
        (1, id.parse().unwrap_or(u16::MAX))
    } else {
        (2, u16::MAX)
    }
}

fn alloc_json(alloc: &BTreeMap<NodeId, u32>) -> String {
    let mut s = String::from("{");
    for (i, (peer, pads)) in alloc.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(s, "\"{}\":{}", node_label(*peer), pads);
    }
    s.push('}');
    s
}

impl Timeline {
    /// Serializes the timeline as JSON Lines: one `meta` record, then one
    /// `interval` record per node-sample, one `fabric` record per
    /// port-sample, and one `event` record per trace entry. The schema is
    /// documented in `EXPERIMENTS.md`.
    #[must_use]
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"kind\":\"meta\",\"interval\":{},\"intervals\":{},\"fabric_samples\":{},\"trace_events\":{},\"events_dropped\":{},\"scopes\":{{",
            self.interval.as_u64(),
            self.samples.len(),
            self.fabric.len(),
            self.events.len(),
            self.events_dropped,
        );
        for (i, (name, count)) in self.scope_counts.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{name}\":{count}");
        }
        out.push_str("}}\n");

        for s in &self.samples {
            let _ = writeln!(
                out,
                "{{\"kind\":\"interval\",\"cycle\":{},\"node\":\"{}\",\"send_weight\":{},\"rebalances\":{},\"send_alloc\":{},\"recv_alloc\":{},\"otp_hits\":{},\"otp_partials\":{},\"otp_misses\":{},\"hit_rate\":{},\"batch_closed_full\":{},\"batch_closed_flush\":{},\"batch_occupancy\":{},\"ack_window_free\":{},\"ack_window_grants\":{}}}",
                s.cycle.as_u64(),
                node_label(s.node),
                s.send_weight.map_or_else(|| "null".to_string(), json_f64),
                s.rebalances,
                alloc_json(&s.send_alloc),
                alloc_json(&s.recv_alloc),
                s.otp_hits,
                s.otp_partials,
                s.otp_misses,
                s.hit_rate().map_or_else(|| "null".to_string(), json_f64),
                s.batch_closed_full,
                s.batch_closed_flush,
                json_f64(s.batch_occupancy),
                s.ack_window_free,
                s.ack_window_grants,
            );
        }
        for f in &self.fabric {
            let _ = writeln!(
                out,
                "{{\"kind\":\"fabric\",\"cycle\":{},\"port\":\"{}\",\"bytes_delta\":{},\"queue_depth\":{},\"busy_horizon\":{},\"data_vc_occupancy\":{},\"ctrl_vc_occupancy\":{},\"grants\":{},\"ctrl_bytes_delta\":{},\"ctrl_grants\":{}}}",
                f.cycle.as_u64(),
                f.port,
                f.bytes_delta,
                f.queue_depth,
                f.busy_horizon,
                f.data_vc_occupancy,
                f.ctrl_vc_occupancy,
                f.grants,
                f.ctrl_bytes_delta,
                f.ctrl_grants,
            );
        }
        for r in &self.events {
            let cycle = r.cycle.as_u64();
            let _ = match &r.event {
                TraceEvent::Repartition { node, rebalances } => writeln!(
                    out,
                    "{{\"kind\":\"event\",\"cycle\":{cycle},\"event\":\"repartition\",\"node\":\"{}\",\"rebalances\":{rebalances}}}",
                    node_label(*node),
                ),
                TraceEvent::BatchClose { node, full } => writeln!(
                    out,
                    "{{\"kind\":\"event\",\"cycle\":{cycle},\"event\":\"batch_close\",\"node\":\"{}\",\"full\":{full}}}",
                    node_label(*node),
                ),
                TraceEvent::AckTimeout { kind, src, dst } => writeln!(
                    out,
                    "{{\"kind\":\"event\",\"cycle\":{cycle},\"event\":\"ack_timeout\",\"fault\":\"{kind:?}\",\"src\":\"{}\",\"dst\":\"{}\"}}",
                    node_label(*src),
                    node_label(*dst),
                ),
                TraceEvent::AdversaryDetection { kind, src, dst } => writeln!(
                    out,
                    "{{\"kind\":\"event\",\"cycle\":{cycle},\"event\":\"adversary_detection\",\"fault\":\"{kind:?}\",\"src\":\"{}\",\"dst\":\"{}\"}}",
                    node_label(*src),
                    node_label(*dst),
                ),
            };
        }
        out
    }

    /// Folds the series into summary percentiles.
    #[must_use]
    pub fn summary(&self) -> TimelineSummary {
        let hit_rates: Vec<f64> = self
            .samples
            .iter()
            .filter_map(IntervalSample::hit_rate)
            .collect();
        let depths: Vec<f64> = self.fabric.iter().map(|f| f.queue_depth as f64).collect();
        let horizons: Vec<f64> = self.fabric.iter().map(|f| f.busy_horizon as f64).collect();
        TimelineSummary {
            intervals: self.samples.len(),
            trace_events: self.events.len(),
            events_dropped: self.events_dropped,
            hit_rate_p50: percentile(&hit_rates, 50.0),
            hit_rate_p90: percentile(&hit_rates, 90.0),
            queue_depth_p50: percentile(&depths, 50.0),
            queue_depth_p90: percentile(&depths, 90.0),
            busy_horizon_p50: percentile(&horizons, 50.0),
            busy_horizon_p90: percentile(&horizons, 90.0),
        }
    }
}

/// Per-run state of the observability layer. Lives inside the event loop
/// only when `config.observability.enabled`; every hook is behind an
/// `Option` so disabled runs pay nothing.
#[derive(Debug)]
pub struct TimeSeriesCollector {
    interval: Duration,
    trace_capacity: usize,
    samples: Vec<IntervalSample>,
    fabric: Vec<FabricSample>,
    trace: VecDeque<TraceRecord>,
    events_dropped: u64,
    scope_counts: BTreeMap<&'static str, u64>,
    /// Cumulative (hits, partials, misses) per node at the last sample.
    prev_otp: BTreeMap<NodeId, (u64, u64, u64)>,
    /// Cumulative (closed full, closed by flush) per node at the last
    /// sample.
    prev_batches: BTreeMap<NodeId, (u64, u64)>,
    /// Rebalance count per node at the last sample (repartition trace).
    prev_rebalances: BTreeMap<NodeId, u64>,
    /// Cumulative bytes per port label at the last sample.
    prev_port_bytes: BTreeMap<String, u64>,
    /// Cumulative control-VC bytes per port label at the last sample.
    prev_port_ctrl_bytes: BTreeMap<String, u64>,
    /// Node-egress ports this collector samples (`None` = all). Sharded
    /// runs scope each shard's collector to its owned ports so the merged
    /// timeline has exactly one row per port per boundary.
    scope_nodes: Option<Vec<bool>>,
    /// Switch-egress ports this collector samples (`None` = all).
    scope_switches: Option<Vec<bool>>,
    /// Deterministic global-order keys for `trace`, index-aligned with it
    /// (empty on single-thread runs, which never set a key base). The key
    /// of a record is the stamp of the event whose handler recorded it,
    /// plus the record's index within that handler.
    trace_keys: VecDeque<(Cycle, Stamp, u32)>,
    /// Stamp of the event currently being handled (sharded engine only).
    key_base: Option<(Cycle, Stamp)>,
    /// Records emitted so far by the current handler.
    key_intra: u32,
}

impl TimeSeriesCollector {
    /// Creates a collector sampling every `interval` cycles (the
    /// repartition interval `T`).
    #[must_use]
    pub fn new(cfg: &ObservabilityConfig, interval: Duration) -> Self {
        TimeSeriesCollector {
            interval,
            trace_capacity: cfg.trace_capacity as usize,
            samples: Vec::new(),
            fabric: Vec::new(),
            trace: VecDeque::new(),
            events_dropped: 0,
            scope_counts: BTreeMap::new(),
            prev_otp: BTreeMap::new(),
            prev_batches: BTreeMap::new(),
            prev_rebalances: BTreeMap::new(),
            prev_port_bytes: BTreeMap::new(),
            prev_port_ctrl_bytes: BTreeMap::new(),
            scope_nodes: None,
            scope_switches: None,
            trace_keys: VecDeque::new(),
            key_base: None,
            key_intra: 0,
        }
    }

    /// Restricts fabric-port sampling to the node/switch egress ports
    /// whose mask entry is `true` (indexed by raw node id / switch id).
    /// Node *state* rows need no mask: a shard's pool only holds its own
    /// NICs.
    #[must_use]
    pub fn with_scope(mut self, nodes: Vec<bool>, switches: Vec<bool>) -> Self {
        self.scope_nodes = Some(nodes);
        self.scope_switches = Some(switches);
        self
    }

    /// Sets the global-order key under which subsequent trace records are
    /// filed: the fire time and [`Stamp`] of the event whose handler is
    /// about to run. The sharded engine calls this before every handler
    /// so [`TimeSeriesCollector::merge_shards`] can interleave the
    /// per-shard traces in exact single-thread order.
    pub fn set_record_key(&mut self, fire: Cycle, stamp: Stamp) {
        self.key_base = Some((fire, stamp));
        self.key_intra = 0;
    }

    /// The sampling interval.
    #[must_use]
    pub fn interval(&self) -> Duration {
        self.interval
    }

    /// Counts one simulation-loop event of type `name` (cycle-accounting
    /// scope for the hot path).
    pub fn note_event(&mut self, name: &'static str) {
        *self.scope_counts.entry(name).or_insert(0) += 1;
    }

    /// Appends a record to the bounded trace, evicting the oldest when
    /// full.
    pub fn record_trace(&mut self, cycle: Cycle, event: TraceEvent) {
        if self.trace.len() == self.trace_capacity {
            self.trace.pop_front();
            if !self.trace_keys.is_empty() {
                self.trace_keys.pop_front();
            }
            self.events_dropped += 1;
        }
        if let Some((fire, stamp)) = &self.key_base {
            self.trace_keys
                .push_back((*fire, stamp.clone(), self.key_intra));
            self.key_intra += 1;
        }
        self.trace.push_back(TraceRecord { cycle, event });
    }

    /// Classifies a harness detection into the trace: detections whose
    /// `detected_at` trails `injected_at` surfaced through the sender's
    /// ACK timeout (dropped ACKs, over-length trailers); all others fired
    /// inline.
    pub fn record_security_event(&mut self, ev: &SecurityEvent) {
        let event = if ev.detected_at > ev.injected_at {
            TraceEvent::AckTimeout {
                kind: ev.kind,
                src: ev.src,
                dst: ev.dst,
            }
        } else {
            TraceEvent::AdversaryDetection {
                kind: ev.kind,
                src: ev.src,
                dst: ev.dst,
            }
        };
        self.record_trace(ev.detected_at, event);
    }

    /// Records a batch close at `node` (`full` when it filled, otherwise
    /// the flush timeout fired).
    pub fn record_batch_close(&mut self, cycle: Cycle, node: NodeId, full: bool) {
        self.record_trace(cycle, TraceEvent::BatchClose { node, full });
    }

    /// Takes one sample of every node and fabric port at boundary `now`.
    /// The caller is responsible for having advanced the schemes to the
    /// boundary first (see the module docs on timing neutrality).
    pub fn sample<D>(&mut self, now: Cycle, pool: &NicPool<D>, fabric: &Fabric) {
        for (node, nic) in pool.iter_nics() {
            let stats = nic.otp_stats();
            let hits = stats.count(mgpu_types::Direction::Send, mgpu_secure::PadClass::Hit)
                + stats.count(mgpu_types::Direction::Recv, mgpu_secure::PadClass::Hit);
            let partials = stats.count(mgpu_types::Direction::Send, mgpu_secure::PadClass::Partial)
                + stats.count(mgpu_types::Direction::Recv, mgpu_secure::PadClass::Partial);
            let misses = stats.count(mgpu_types::Direction::Send, mgpu_secure::PadClass::Miss)
                + stats.count(mgpu_types::Direction::Recv, mgpu_secure::PadClass::Miss);
            let (ph, pp, pm) = self
                .prev_otp
                .insert(node, (hits, partials, misses))
                .unwrap_or((0, 0, 0));

            let (full, flush) = nic.batch_closes();
            let (bf, bfl) = self
                .prev_batches
                .insert(node, (full, flush))
                .unwrap_or((0, 0));

            let telemetry = nic.scheme_telemetry();
            let rebalances = telemetry.as_ref().map_or(0, |t| t.rebalances);
            let prev_reb = self.prev_rebalances.insert(node, rebalances).unwrap_or(0);
            if rebalances > prev_reb {
                self.record_trace(now, TraceEvent::Repartition { node, rebalances });
            }

            self.samples.push(IntervalSample {
                cycle: now,
                node,
                send_weight: telemetry.as_ref().map(|t| t.send_weight),
                rebalances,
                send_alloc: telemetry
                    .as_ref()
                    .map(|t| t.send_depths.clone())
                    .unwrap_or_default(),
                recv_alloc: telemetry.map(|t| t.recv_depths).unwrap_or_default(),
                otp_hits: hits - ph,
                otp_partials: partials - pp,
                otp_misses: misses - pm,
                batch_closed_full: full - bf,
                batch_closed_flush: flush - bfl,
                batch_occupancy: nic.mean_batch_occupancy(),
                ack_window_free: pool.ack_free(node),
                ack_window_grants: pool.ack_grants(node),
            });
        }

        let topo = fabric.topology();
        let in_scope = |mask: &Option<Vec<bool>>, idx: usize| {
            mask.as_ref()
                .is_none_or(|m| m.get(idx).copied().unwrap_or(false))
        };
        struct PortStats {
            bytes: u64,
            queue_depth: u64,
            busy_horizon: u64,
            data_vc_occupancy: u64,
            ctrl_vc_occupancy: u64,
            grants: u64,
            ctrl_bytes: u64,
            ctrl_grants: u64,
        }
        let port_stats = |server: &mgpu_sim::TimedServer, ctrl_bytes: u64, ctrl_grants: u64| {
            let data_occ = u64::from(server.occupancy(mgpu_sim::Vc::Data, now));
            let ctrl_occ = u64::from(server.occupancy(mgpu_sim::Vc::Ctrl, now));
            PortStats {
                bytes: server.totals().total().as_u64(),
                // Pending completions, not time: the busy-time-until-free
                // value this field used to (mis)report is busy_horizon.
                queue_depth: data_occ + ctrl_occ,
                busy_horizon: server.next_free().saturating_since(now).as_u64(),
                data_vc_occupancy: data_occ,
                ctrl_vc_occupancy: ctrl_occ,
                grants: server.grants(mgpu_sim::Vc::Data) + server.grants(mgpu_sim::Vc::Ctrl),
                ctrl_bytes,
                ctrl_grants,
            }
        };
        let mut ports: Vec<(String, PortStats)> = topo
            .iter_egress()
            .filter(|(node, _)| in_scope(&self.scope_nodes, usize::from(node.raw())))
            .map(|(node, server)| {
                let stats = port_stats(
                    server,
                    topo.ctrl_bytes_from(node),
                    topo.ctrl_grants_from(node),
                );
                (node_label(node), stats)
            })
            .collect();
        ports.extend(
            topo.iter_switch_egress()
                .filter(|(id, _)| in_scope(&self.scope_switches, usize::from(*id)))
                .map(|(id, server)| (format!("switch{id}"), port_stats(server, 0, 0))),
        );
        for (port, stats) in ports {
            let prev = self
                .prev_port_bytes
                .insert(port.clone(), stats.bytes)
                .unwrap_or(0);
            let prev_ctrl = self
                .prev_port_ctrl_bytes
                .insert(port.clone(), stats.ctrl_bytes)
                .unwrap_or(0);
            self.fabric.push(FabricSample {
                cycle: now,
                port,
                bytes_delta: stats.bytes - prev,
                queue_depth: stats.queue_depth,
                busy_horizon: stats.busy_horizon,
                data_vc_occupancy: stats.data_vc_occupancy,
                ctrl_vc_occupancy: stats.ctrl_vc_occupancy,
                grants: stats.grants,
                ctrl_bytes_delta: stats.ctrl_bytes - prev_ctrl,
                ctrl_grants: stats.ctrl_grants,
            });
        }
    }

    /// Merges the scoped per-shard collectors of a sharded run into one
    /// collector equivalent to the single-thread run's.
    ///
    /// * State and port samples are re-sorted into the single-thread
    ///   emission order: by boundary, then node ascending (state rows) or
    ///   node-ports-then-switch-ports (fabric rows).
    /// * Trace records are interleaved by their global-order keys (the
    ///   creating event's stamp — a total order identical to the
    ///   single-thread pop order), then re-capped: each shard ring keeps
    ///   the newest-keyed tail of its own records, so the union's
    ///   newest-keyed `capacity` records are exactly the single-thread
    ///   ring's survivors.
    /// * Scope counts sum; only shard 0 counts `Sample` pops, so the sum
    ///   matches the single-thread tally.
    #[must_use]
    pub fn merge_shards(
        config: &ObservabilityConfig,
        interval: Duration,
        parts: Vec<TimeSeriesCollector>,
    ) -> TimeSeriesCollector {
        let mut merged = TimeSeriesCollector::new(config, interval);
        let mut trace: Vec<((Cycle, Stamp, u32), TraceRecord)> = Vec::new();
        let mut total_records: u64 = 0;
        for mut part in parts {
            merged.samples.append(&mut part.samples);
            merged.fabric.append(&mut part.fabric);
            debug_assert_eq!(part.trace.len(), part.trace_keys.len());
            total_records += part.events_dropped + part.trace.len() as u64;
            trace.extend(part.trace_keys.drain(..).zip(part.trace.drain(..)));
            for (name, count) in part.scope_counts {
                *merged.scope_counts.entry(name).or_insert(0) += count;
            }
        }
        merged.samples.sort_by_key(|s| (s.cycle, s.node));
        merged
            .fabric
            .sort_by_key(|s| (s.cycle, port_order(&s.port)));
        trace.sort_by(|a, b| a.0.cmp(&b.0));
        let keep = merged.trace_capacity.min(trace.len());
        merged.events_dropped = total_records - keep as u64;
        merged.trace = trace
            .drain(trace.len() - keep..)
            .map(|(_, record)| record)
            .collect();
        merged
    }

    /// Finalizes the collector into the report's [`Timeline`].
    #[must_use]
    pub fn finish(self) -> Timeline {
        Timeline {
            interval: self.interval,
            samples: self.samples,
            fabric: self.fabric,
            events: self.trace.into_iter().collect(),
            events_dropped: self.events_dropped,
            scope_counts: self.scope_counts,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn collector(capacity: u32) -> TimeSeriesCollector {
        let cfg = ObservabilityConfig {
            enabled: true,
            trace_capacity: capacity,
        };
        TimeSeriesCollector::new(&cfg, Duration::cycles(1000))
    }

    #[test]
    fn trace_ring_drops_oldest() {
        let mut c = collector(2);
        for i in 0..5u64 {
            c.record_batch_close(Cycle::new(i), NodeId::gpu(1), true);
        }
        let t = c.finish();
        assert_eq!(t.events.len(), 2);
        assert_eq!(t.events_dropped, 3);
        assert_eq!(t.events[0].cycle, Cycle::new(3));
        assert_eq!(t.events[1].cycle, Cycle::new(4));
    }

    #[test]
    fn security_events_classify_by_detection_delay() {
        let mut c = collector(16);
        c.record_security_event(&SecurityEvent {
            kind: FaultKind::FlipMac,
            src: NodeId::gpu(1),
            dst: NodeId::gpu(2),
            injected_at: Cycle::new(100),
            detected_at: Cycle::new(100),
        });
        c.record_security_event(&SecurityEvent {
            kind: FaultKind::DropAck,
            src: NodeId::gpu(2),
            dst: NodeId::gpu(3),
            injected_at: Cycle::new(200),
            detected_at: Cycle::new(600),
        });
        let t = c.finish();
        assert!(matches!(
            t.events[0].event,
            TraceEvent::AdversaryDetection {
                kind: FaultKind::FlipMac,
                ..
            }
        ));
        assert!(matches!(
            t.events[1].event,
            TraceEvent::AckTimeout {
                kind: FaultKind::DropAck,
                ..
            }
        ));
    }

    #[test]
    fn jsonl_is_line_per_record_and_null_safe() {
        let mut c = collector(4);
        c.note_event("TryIssue");
        c.note_event("TryIssue");
        c.record_batch_close(Cycle::new(42), NodeId::CPU, false);
        let mut t = c.finish();
        t.samples.push(IntervalSample {
            cycle: Cycle::new(1000),
            node: NodeId::gpu(1),
            send_weight: Some(f64::NAN), // must serialize as null
            rebalances: 1,
            send_alloc: BTreeMap::from([(NodeId::gpu(2), 9)]),
            recv_alloc: BTreeMap::new(),
            otp_hits: 0,
            otp_partials: 0,
            otp_misses: 0,
            batch_closed_full: 0,
            batch_closed_flush: 0,
            batch_occupancy: 0.0,
            ack_window_free: 64,
            ack_window_grants: 7,
        });
        t.fabric.push(FabricSample {
            cycle: Cycle::new(1000),
            port: "gpu1".to_string(),
            bytes_delta: 512,
            queue_depth: 2,
            busy_horizon: 37,
            data_vc_occupancy: 1,
            ctrl_vc_occupancy: 1,
            grants: 5,
            ctrl_bytes_delta: 48,
            ctrl_grants: 3,
        });
        let jsonl = t.to_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 4); // meta + interval + fabric + event
        assert!(lines[0].contains("\"kind\":\"meta\""));
        assert!(lines[0].contains("\"TryIssue\":2"));
        assert!(lines[1].contains("\"send_weight\":null"));
        assert!(lines[1].contains("\"send_alloc\":{\"gpu2\":9}"));
        assert!(lines[1].contains("\"ack_window_grants\":7"));
        assert!(lines[2].contains("\"kind\":\"fabric\""));
        assert!(lines[2].contains("\"queue_depth\":2"));
        assert!(lines[2].contains("\"busy_horizon\":37"));
        assert!(lines[2].contains("\"ctrl_bytes_delta\":48"));
        assert!(lines[2].contains("\"ctrl_grants\":3"));
        assert!(lines[3].contains("\"event\":\"batch_close\""));
        assert!(lines[3].contains("\"full\":false"));
        // No line may contain a bare NaN/inf token.
        assert!(!jsonl.contains("NaN") && !jsonl.contains("inf"));
    }

    #[test]
    fn summary_percentiles_over_samples() {
        let mut t = collector(4).finish();
        for (i, hits) in [(1u64, 9u64), (2, 7), (3, 5)] {
            t.samples.push(IntervalSample {
                cycle: Cycle::new(i * 1000),
                node: NodeId::gpu(1),
                send_weight: None,
                rebalances: 0,
                send_alloc: BTreeMap::new(),
                recv_alloc: BTreeMap::new(),
                otp_hits: hits,
                otp_partials: 0,
                otp_misses: 10 - hits,
                batch_closed_full: 0,
                batch_closed_flush: 0,
                batch_occupancy: 0.0,
                ack_window_free: 0,
                ack_window_grants: 0,
            });
        }
        let s = t.summary();
        assert_eq!(s.intervals, 3);
        assert_eq!(s.hit_rate_p50, Some(0.7));
        assert!(s.queue_depth_p50.is_none());
        assert!(s.busy_horizon_p50.is_none());
    }

    /// `queue_depth` counts pending entries while `busy_horizon` carries
    /// the serializer backlog in cycles — the two summaries are
    /// independent series over the same fabric rows.
    #[test]
    fn summary_separates_queue_depth_from_busy_horizon() {
        let mut t = collector(4).finish();
        for (i, (depth, horizon)) in [(1u64, (0u64, 120u64)), (2, (2, 40)), (3, (4, 200))] {
            t.fabric.push(FabricSample {
                cycle: Cycle::new(i * 1000),
                port: "gpu1".to_string(),
                bytes_delta: 0,
                queue_depth: depth,
                busy_horizon: horizon,
                data_vc_occupancy: depth,
                ctrl_vc_occupancy: 0,
                grants: depth,
                ctrl_bytes_delta: 0,
                ctrl_grants: 0,
            });
        }
        let s = t.summary();
        assert_eq!(s.queue_depth_p50, Some(2.0));
        assert_eq!(s.busy_horizon_p50, Some(120.0));
    }
}
