//! Passive contention-channel adversary: what a co-tenant learns from
//! shared fabric ports.
//!
//! The active adversary ([`crate::harness`]) rewrites bytes in flight;
//! this module models the *passive* threat the paper's integrity
//! machinery cannot address — an NVBleed-style co-tenant that never
//! touches the victim's traffic but shares switch ports with it and
//! watches congestion. [`PassiveObserver`] is deliberately restricted to
//! signals such a co-tenant could measure on its own port: per-port byte
//! throughput deltas, control-channel byte/grant counts, queue depths
//! and serialization backlogs — all read from the recorded
//! [`Timeline`], never from protocol state.
//!
//! Leakage is scored two ways:
//!
//! * **Workload/scheme classification** — a windowed feature vector per
//!   run ([`PassiveObserver::features`]) feeds a nearest-centroid
//!   classifier ([`NearestCentroid`]) trained on seeded runs. Accuracy
//!   above chance = the contention channel leaks which protected
//!   configuration is running.
//! * **Batch-phase recovery** — the metadata batcher's timeout flushes
//!   put a periodic signature on the control channel;
//!   [`PassiveObserver::phase_probe`] recovers its phase by circular
//!   averaging, scored against the ground-truth close times in the
//!   trace ([`close_phase`]). The resultant length (`lock`) measures
//!   how confidently *any* phase can be read off.
//!
//! The traffic-shape defenses ([`mgpu_types::DefenseConfig`]) target
//! exactly these scores: constant-rate chaff makes the control-channel
//! features workload-independent, and batch-close jitter (bound on the
//! order of the flush period) destroys the phase lock.

use crate::timeseries::{FabricSample, Timeline, TraceEvent};
use mgpu_types::Duration;
use std::collections::BTreeMap;

/// Which fabric-sample signals the observer folds into its features.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FeatureSet {
    /// Control-channel signals only (control byte/grant deltas and duty
    /// cycle): the channel the constant-rate defense shapes. This is the
    /// headline leakage score — at-chance accuracy here means the
    /// shaped channel carries no workload information.
    Ctrl,
    /// Control plus data-port signals (data byte deltas, busy horizon,
    /// queue depth): residual leakage outside the shaped channel, which
    /// traffic shaping of the metadata path does not claim to remove.
    Full,
}

/// One run's windowed observation, flattened to a fixed-length vector
/// (ports in observer order, features per port in a fixed order).
#[derive(Debug, Clone, PartialEq)]
pub struct FeatureVector {
    /// Feature values; equal length for every run observed by the same
    /// [`PassiveObserver`].
    pub values: Vec<f64>,
}

/// An estimated periodic phase on the control channel.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PhaseEstimate {
    /// Phase in cycles, in `[0, period)`.
    pub phase: f64,
    /// Resultant length in `[0, 1]`: 1 = perfectly concentrated
    /// (phase fully recoverable), 0 = no periodic structure.
    pub lock: f64,
}

/// A passive co-tenant tapping a fixed set of fabric ports.
#[derive(Debug, Clone)]
pub struct PassiveObserver {
    ports: Vec<String>,
    features: FeatureSet,
}

fn mean_std(xs: &[f64]) -> (f64, f64) {
    if xs.is_empty() {
        return (0.0, 0.0);
    }
    let n = xs.len() as f64;
    let mean = xs.iter().sum::<f64>() / n;
    let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
    (mean, var.sqrt())
}

/// Successive differences of a cumulative counter series.
fn deltas(cumulative: impl Iterator<Item = u64>) -> Vec<f64> {
    let mut prev = 0u64;
    cumulative
        .map(|c| {
            let d = c.saturating_sub(prev);
            prev = c;
            d as f64
        })
        .collect()
}

/// Circular mean of weighted angles over `period`; `None` when the
/// total weight is zero.
fn circular_mean(points: impl Iterator<Item = (f64, f64)>, period: f64) -> Option<PhaseEstimate> {
    let (mut sx, mut sy, mut w_total) = (0.0f64, 0.0f64, 0.0f64);
    for (t, w) in points {
        let theta = (t.rem_euclid(period)) / period * std::f64::consts::TAU;
        sx += w * theta.cos();
        sy += w * theta.sin();
        w_total += w;
    }
    if w_total <= 0.0 {
        return None;
    }
    let phase = sy.atan2(sx).rem_euclid(std::f64::consts::TAU) / std::f64::consts::TAU * period;
    let lock = (sx * sx + sy * sy).sqrt() / w_total;
    Some(PhaseEstimate { phase, lock })
}

/// Circular distance between two phases over `period` (cycles, in
/// `[0, period / 2]`).
#[must_use]
pub fn circular_error(a: f64, b: f64, period: f64) -> f64 {
    let d = (a - b).rem_euclid(period);
    d.min(period - d)
}

/// Ground-truth batch-flush phase: the circular mean of the trace's
/// timeout-close cycles over `period`. This is what the observer tries
/// to recover; it needs the protocol-side trace, which a real co-tenant
/// does not have.
#[must_use]
pub fn close_phase(timeline: &Timeline, period: Duration) -> Option<PhaseEstimate> {
    let p = period.as_u64() as f64;
    circular_mean(
        timeline.events.iter().filter_map(|r| match r.event {
            TraceEvent::BatchClose { full: false, .. } => Some((r.cycle.as_u64() as f64, 1.0)),
            _ => None,
        }),
        p,
    )
}

impl PassiveObserver {
    /// An observer tapping `ports` (timeline port labels, e.g. `"gpu1"`)
    /// and folding `features` into its vectors.
    #[must_use]
    pub fn on_ports(ports: &[&str], features: FeatureSet) -> Self {
        PassiveObserver {
            ports: ports.iter().map(|p| (*p).to_string()).collect(),
            features,
        }
    }

    /// The observed port labels, in feature order.
    #[must_use]
    pub fn ports(&self) -> &[String] {
        &self.ports
    }

    fn port_rows<'t>(&self, timeline: &'t Timeline, port: &str) -> Vec<&'t FabricSample> {
        timeline.fabric.iter().filter(|f| f.port == port).collect()
    }

    /// Flattens one run's timeline into the observer's feature vector.
    /// Ports with no samples contribute zeros, so vectors from runs of
    /// different lengths stay comparable.
    #[must_use]
    pub fn features(&self, timeline: &Timeline) -> FeatureVector {
        let mut values = Vec::new();
        for port in &self.ports {
            let rows = self.port_rows(timeline, port);
            let ctrl_bytes: Vec<f64> = rows.iter().map(|r| r.ctrl_bytes_delta as f64).collect();
            let ctrl_grants = deltas(rows.iter().map(|r| r.ctrl_grants));
            let duty = if rows.is_empty() {
                0.0
            } else {
                ctrl_bytes.iter().filter(|&&b| b > 0.0).count() as f64 / rows.len() as f64
            };
            for series in [&ctrl_bytes, &ctrl_grants] {
                let (m, s) = mean_std(series);
                values.push(m);
                values.push(s);
            }
            values.push(duty);
            if self.features == FeatureSet::Full {
                let data_bytes: Vec<f64> = rows.iter().map(|r| r.bytes_delta as f64).collect();
                let horizons: Vec<f64> = rows.iter().map(|r| r.busy_horizon as f64).collect();
                let depths: Vec<f64> = rows.iter().map(|r| r.queue_depth as f64).collect();
                for series in [&data_bytes, &horizons, &depths] {
                    let (m, s) = mean_std(series);
                    values.push(m);
                    values.push(s);
                }
            }
        }
        FeatureVector { values }
    }

    /// Recovers the dominant periodic phase of the observed control
    /// channels over `period`, by circular averaging of per-window
    /// control-grant counts. Each window's grants are attributed to its
    /// midpoint (the sampler only knows the boundary). `None` when the
    /// observed ports carried no control grants.
    #[must_use]
    pub fn phase_probe(&self, timeline: &Timeline, period: Duration) -> Option<PhaseEstimate> {
        let p = period.as_u64() as f64;
        let half_window = timeline.interval.as_u64() as f64 / 2.0;
        let mut points: Vec<(f64, f64)> = Vec::new();
        for port in &self.ports {
            let rows = self.port_rows(timeline, port);
            let grants = deltas(rows.iter().map(|r| r.ctrl_grants));
            points.extend(
                rows.iter()
                    .zip(grants)
                    .filter(|(_, g)| *g > 0.0)
                    .map(|(r, g)| (r.cycle.as_u64() as f64 - half_window, g)),
            );
        }
        circular_mean(points.into_iter(), p)
    }
}

/// Nearest-centroid classifier over z-score-normalized feature vectors.
///
/// Deliberately simple: with a handful of seeded training runs per
/// class, anything fancier would overfit — and if even a centroid
/// classifier beats chance, the channel demonstrably leaks.
#[derive(Debug, Clone)]
pub struct NearestCentroid {
    /// Per-dimension training mean (for normalization).
    mean: Vec<f64>,
    /// Per-dimension training standard deviation (zero-variance
    /// dimensions normalize with 1.0).
    std: Vec<f64>,
    /// Class label -> centroid in normalized space, label-ascending.
    centroids: Vec<(String, Vec<f64>)>,
}

impl NearestCentroid {
    /// Trains on `(label, features)` examples.
    ///
    /// # Panics
    ///
    /// Panics if `examples` is empty or the vectors have uneven lengths.
    #[must_use]
    pub fn train(examples: &[(String, FeatureVector)]) -> Self {
        let dim = examples
            .first()
            .expect("at least one example")
            .1
            .values
            .len();
        assert!(
            examples.iter().all(|(_, v)| v.values.len() == dim),
            "uneven feature-vector lengths"
        );
        let n = examples.len() as f64;
        let mut mean = vec![0.0f64; dim];
        for (_, v) in examples {
            for (m, x) in mean.iter_mut().zip(&v.values) {
                *m += x / n;
            }
        }
        let mut std = vec![0.0f64; dim];
        for (_, v) in examples {
            for ((s, m), x) in std.iter_mut().zip(&mean).zip(&v.values) {
                *s += (x - m).powi(2) / n;
            }
        }
        for s in &mut std {
            *s = s.sqrt();
            if *s == 0.0 {
                *s = 1.0;
            }
        }
        let normalize = |v: &FeatureVector| -> Vec<f64> {
            v.values
                .iter()
                .zip(&mean)
                .zip(&std)
                .map(|((x, m), s)| (x - m) / s)
                .collect()
        };
        let mut by_label: BTreeMap<&str, (Vec<f64>, f64)> = BTreeMap::new();
        for (label, v) in examples {
            let nv = normalize(v);
            let entry = by_label
                .entry(label.as_str())
                .or_insert_with(|| (vec![0.0; dim], 0.0));
            for (c, x) in entry.0.iter_mut().zip(&nv) {
                *c += x;
            }
            entry.1 += 1.0;
        }
        let centroids = by_label
            .into_iter()
            .map(|(label, (sum, count))| {
                (
                    label.to_string(),
                    sum.into_iter().map(|x| x / count).collect(),
                )
            })
            .collect();
        NearestCentroid {
            mean,
            std,
            centroids,
        }
    }

    /// The class whose centroid is nearest to `v` (Euclidean, in
    /// normalized space). Ties break toward the lexicographically first
    /// label, keeping classification deterministic.
    #[must_use]
    pub fn classify(&self, v: &FeatureVector) -> &str {
        let nv: Vec<f64> = v
            .values
            .iter()
            .zip(&self.mean)
            .zip(&self.std)
            .map(|((x, m), s)| (x - m) / s)
            .collect();
        self.centroids
            .iter()
            .min_by(|(_, a), (_, b)| {
                let da: f64 = a.iter().zip(&nv).map(|(c, x)| (c - x).powi(2)).sum();
                let db: f64 = b.iter().zip(&nv).map(|(c, x)| (c - x).powi(2)).sum();
                da.partial_cmp(&db).expect("finite distances")
            })
            .map(|(label, _)| label.as_str())
            .expect("trained on at least one class")
    }

    /// Class labels in centroid order (label-ascending).
    pub fn labels(&self) -> impl Iterator<Item = &str> {
        self.centroids.iter().map(|(l, _)| l.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timeseries::TraceRecord;
    use mgpu_types::{Cycle, NodeId};

    fn sample(cycle: u64, port: &str, ctrl_bytes_delta: u64, ctrl_grants: u64) -> FabricSample {
        FabricSample {
            cycle: Cycle::new(cycle),
            port: port.to_string(),
            bytes_delta: 10 * ctrl_bytes_delta,
            queue_depth: 1,
            busy_horizon: 5,
            data_vc_occupancy: 1,
            ctrl_vc_occupancy: 0,
            grants: ctrl_grants + 2,
            ctrl_bytes_delta,
            ctrl_grants,
        }
    }

    fn timeline(interval: u64, fabric: Vec<FabricSample>, events: Vec<TraceRecord>) -> Timeline {
        Timeline {
            interval: Duration::cycles(interval),
            samples: Vec::new(),
            fabric,
            events,
            events_dropped: 0,
            scope_counts: BTreeMap::new(),
        }
    }

    #[test]
    fn features_fold_ctrl_series_per_port() {
        let tl = timeline(
            100,
            vec![
                sample(100, "gpu1", 64, 2),
                sample(200, "gpu1", 0, 2),
                sample(100, "gpu2", 16, 1),
            ],
            Vec::new(),
        );
        let obs = PassiveObserver::on_ports(&["gpu1", "gpu2"], FeatureSet::Ctrl);
        let v = obs.features(&tl);
        // 5 features per port: ctrl-bytes mean/std, ctrl-grant-delta
        // mean/std, duty cycle.
        assert_eq!(v.values.len(), 10);
        assert!((v.values[0] - 32.0).abs() < 1e-9); // gpu1 ctrl bytes mean
        assert!((v.values[4] - 0.5).abs() < 1e-9); // gpu1 duty cycle
        assert!((v.values[5] - 16.0).abs() < 1e-9); // gpu2 ctrl bytes mean
        let full = PassiveObserver::on_ports(&["gpu1", "gpu2"], FeatureSet::Full).features(&tl);
        assert_eq!(full.values.len(), 22);
    }

    #[test]
    fn missing_port_contributes_zeros() {
        let tl = timeline(100, vec![sample(100, "gpu1", 8, 1)], Vec::new());
        let obs = PassiveObserver::on_ports(&["gpu3"], FeatureSet::Ctrl);
        let v = obs.features(&tl);
        assert_eq!(v.values, vec![0.0; 5]);
    }

    #[test]
    fn nearest_centroid_separates_clusters() {
        let ex = |label: &str, base: f64, jitter: f64| {
            (
                label.to_string(),
                FeatureVector {
                    values: vec![base + jitter, 2.0 * base - jitter],
                },
            )
        };
        let model = NearestCentroid::train(&[
            ex("low", 10.0, 1.0),
            ex("low", 10.0, -1.0),
            ex("high", 100.0, 2.0),
            ex("high", 100.0, -2.0),
        ]);
        assert_eq!(model.classify(&ex("", 11.0, 0.0).1), "low");
        assert_eq!(model.classify(&ex("", 95.0, 0.0).1), "high");
        assert_eq!(model.labels().collect::<Vec<_>>(), vec!["high", "low"]);
    }

    #[test]
    fn phase_probe_recovers_synthetic_periodicity() {
        // Control grants bump once per 160-cycle period, in the window
        // ending at 40 + 160k: midpoint 20 + 160k, phase 20.
        let mut fabric = Vec::new();
        let mut grants = 0u64;
        for k in 0..40u64 {
            for w in 0..4u64 {
                let cycle = 160 * k + 40 * (w + 1);
                if w == 0 {
                    grants += 3;
                }
                fabric.push(sample(cycle, "gpu1", 0, grants));
            }
        }
        let tl = timeline(40, fabric, Vec::new());
        let obs = PassiveObserver::on_ports(&["gpu1"], FeatureSet::Ctrl);
        let est = obs.phase_probe(&tl, Duration::cycles(160)).expect("signal");
        assert!(est.lock > 0.99, "lock {}", est.lock);
        assert!(
            circular_error(est.phase, 20.0, 160.0) < 1.0,
            "phase {}",
            est.phase
        );
    }

    #[test]
    fn uniform_grants_have_no_phase_lock() {
        let mut fabric = Vec::new();
        let mut grants = 0u64;
        for k in 0..160u64 {
            grants += 1; // one grant every window, every phase equally
            fabric.push(sample(40 * (k + 1), "gpu1", 0, grants));
        }
        let tl = timeline(40, fabric, Vec::new());
        let obs = PassiveObserver::on_ports(&["gpu1"], FeatureSet::Ctrl);
        let est = obs.phase_probe(&tl, Duration::cycles(160)).expect("signal");
        assert!(est.lock < 0.05, "lock {}", est.lock);
    }

    #[test]
    fn close_phase_reads_flush_closes_only() {
        let events = vec![
            TraceRecord {
                cycle: Cycle::new(37),
                event: TraceEvent::BatchClose {
                    node: NodeId::gpu(1),
                    full: false,
                },
            },
            TraceRecord {
                cycle: Cycle::new(37 + 160),
                event: TraceEvent::BatchClose {
                    node: NodeId::gpu(1),
                    full: false,
                },
            },
            TraceRecord {
                cycle: Cycle::new(99),
                event: TraceEvent::BatchClose {
                    node: NodeId::gpu(2),
                    full: true, // size close: not part of the cadence
                },
            },
        ];
        let tl = timeline(40, Vec::new(), events);
        let truth = close_phase(&tl, Duration::cycles(160)).expect("closes");
        assert!((truth.phase - 37.0).abs() < 1e-6);
        assert!(truth.lock > 0.999);
        assert!(
            close_phase(&timeline(40, Vec::new(), Vec::new()), Duration::cycles(160)).is_none()
        );
    }

    #[test]
    fn circular_error_wraps() {
        assert!((circular_error(10.0, 150.0, 160.0) - 20.0).abs() < 1e-9);
        assert!((circular_error(150.0, 10.0, 160.0) - 20.0).abs() < 1e-9);
        assert!((circular_error(80.0, 0.0, 160.0) - 80.0).abs() < 1e-9);
    }
}
