//! The routed data fabric: moves encrypted blocks hop by hop.
//!
//! [`Fabric`] owns the [`Topology`] and turns a block transmission into a
//! sequence of per-hop transit steps the event loop can schedule:
//! [`Fabric::begin`] books the source's egress port and hands back a
//! [`Transit`] token; each time the token's in-flight bytes reach a
//! waypoint, [`Fabric::advance`] either forwards them (books the
//! waypoint's ingress and egress ports — intermediate GPUs and switches
//! only ever see ciphertext; encryption, MACs and replay protection stay
//! end-to-end between the communicating NICs) or delivers them at the
//! destination's ingress port.
//!
//! On the paper's fully-connected fabric every route is one hop, so the
//! sequence degenerates to exactly the pre-fabric model: one egress
//! booking, one ingress booking, bit-identical timing.

use mgpu_sim::link::{TrafficClass, TrafficTotals, WireParts};
use mgpu_sim::timeq::Busy;
use mgpu_sim::topology::Topology;
use mgpu_types::{ByteSize, Cycle, NodeId, PairId, SystemConfig};

/// A block (or batch of parts travelling together) in flight across the
/// fabric. `hop` is the waypoint whose ingress port the bytes reach next
/// (1 = first waypoint after the source). `Copy`: the token rides inside
/// scheduled events, so it must not drag a heap allocation along.
#[derive(Debug, Clone, Copy)]
pub struct Transit {
    pair: PairId,
    hop: usize,
    parts: WireParts,
    bytes: ByteSize,
    /// Set when this waypoint's ingress was already booked but the
    /// onward egress rejected for credits: the retry must not occupy
    /// the ingress port (and account its bytes) a second time.
    cleared_ingress: Option<Cycle>,
}

impl Transit {
    /// The endpoints this transit travels between.
    #[must_use]
    pub fn pair(&self) -> PairId {
        self.pair
    }

    /// Total bytes on the wire.
    #[must_use]
    pub fn bytes(&self) -> ByteSize {
        self.bytes
    }

    /// The route position (waypoint index) these bytes reach next
    /// (1 = first waypoint after the source). Sharded execution uses this
    /// to route the hop event to the shard owning that waypoint's ports.
    #[must_use]
    pub fn hop(&self) -> usize {
        self.hop
    }
}

/// What happened when in-flight bytes reached their next waypoint.
#[derive(Debug)]
pub enum HopOutcome {
    /// An intermediate waypoint forwarded the bytes; they reach the next
    /// waypoint's ingress at `at`.
    Forwarded {
        /// Arrival time at the next waypoint.
        at: Cycle,
        /// The transit token, advanced one hop.
        transit: Transit,
    },
    /// The waypoint's onward egress is out of data-VC credits: the
    /// typed backpressure reject. The bytes sit in the waypoint's
    /// ingress buffer (already booked); re-advance the returned token
    /// at `retry_at`, when the credit that blocked this hop frees.
    Blocked {
        /// Earliest cycle the needed egress credit frees.
        retry_at: Cycle,
        /// The transit token, unchanged except it remembers its
        /// ingress booking — the retry goes straight to egress.
        transit: Transit,
    },
    /// The destination's ingress port finished clocking the bytes in at
    /// `at`; receive-side processing can start.
    Delivered {
        /// Time the last byte cleared the destination ingress.
        at: Cycle,
    },
}

/// The routed interconnect fabric of one simulation run.
#[derive(Debug)]
pub struct Fabric {
    topo: Topology,
}

impl Fabric {
    /// Builds the fabric for `config`'s topology.
    #[must_use]
    pub fn new(config: &SystemConfig) -> Self {
        Fabric {
            topo: Topology::new(config),
        }
    }

    /// Starts a block transmission: books `pair.src`'s egress port with
    /// `parts` (accounting the bytes to it) and returns the arrival time
    /// at the first waypoint plus the [`Transit`] token to advance there.
    pub fn begin(&mut self, pair: PairId, now: Cycle, parts: WireParts) -> (Cycle, Transit) {
        let bytes = parts.total();
        let at = self.topo.depart(pair, 0, now, &parts);
        (
            at,
            Transit {
                pair,
                hop: 1,
                parts,
                bytes,
                cleared_ingress: None,
            },
        )
    }

    /// Non-mutating admission probe for [`Fabric::begin`]: is `pair`'s
    /// source egress granting data-VC credits at `now`? `Err` carries the
    /// exact retry cycle. Callers order irreversible side effects (ACK
    /// window reservations) *after* this check so a credit reject leaves
    /// nothing to unwind.
    pub fn egress_ready(&self, pair: PairId, now: Cycle) -> Result<(), Busy> {
        self.topo.egress_ready(pair, 0, now)
    }

    /// Advances in-flight bytes through the waypoint they just reached:
    /// books its ingress port, and — unless it is the destination — its
    /// egress port toward the next waypoint.
    pub fn advance(&mut self, transit: Transit, now: Cycle) -> HopOutcome {
        // A retry after a credit reject already holds its ingress
        // booking: clocking the bytes in again would double-book the
        // port and double-count the bytes.
        let through = match transit.cleared_ingress {
            Some(t) => t.max(now),
            None => self
                .topo
                .arrive(transit.pair, transit.hop, now, transit.bytes),
        };
        if transit.hop == self.topo.hops(transit.pair) {
            HopOutcome::Delivered { at: through }
        } else {
            match self
                .topo
                .try_depart(transit.pair, transit.hop, through, &transit.parts)
            {
                Ok(at) => HopOutcome::Forwarded {
                    at,
                    transit: Transit {
                        hop: transit.hop + 1,
                        cleared_ingress: None,
                        ..transit
                    },
                },
                Err(busy) => HopOutcome::Blocked {
                    retry_at: busy.retry_at,
                    transit: Transit {
                        cleared_ingress: Some(through),
                        ..transit
                    },
                },
            }
        }
    }

    /// Transmits a small message on `pair`'s control VC (requests, batch
    /// trailers, ACKs); latency and byte accounting scale with the
    /// route's hop count.
    pub fn transmit_ctrl(
        &mut self,
        pair: PairId,
        now: Cycle,
        parts: &[(ByteSize, TrafficClass)],
    ) -> Cycle {
        self.topo.transmit_ctrl(pair, now, parts)
    }

    /// Records `n` adversary-tampered crossings against `src`'s egress.
    pub fn note_tampered_egress(&mut self, src: NodeId, n: u64) {
        self.topo.note_tampered_egress(src, n);
    }

    /// Per-hop traffic totals across all fabric ports and VCs.
    #[must_use]
    pub fn traffic_totals(&self) -> TrafficTotals {
        self.topo.traffic_totals()
    }

    /// Total adversary-tampered crossings.
    #[must_use]
    pub fn tampered_total(&self) -> u64 {
        self.topo.tampered_total()
    }

    /// The underlying topology (read-only, for reporting).
    #[must_use]
    pub fn topology(&self) -> &Topology {
        &self.topo
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mgpu_types::TopologyKind;

    fn fabric(kind: TopologyKind, gpus: u16) -> Fabric {
        let mut cfg = SystemConfig::paper_4gpu();
        cfg.gpu_count = gpus;
        cfg.topology = kind;
        Fabric::new(&cfg)
    }

    #[test]
    fn single_hop_delivers_immediately() {
        let mut f = fabric(TopologyKind::FullyConnected, 4);
        let pair = PairId::new(NodeId::gpu(1), NodeId::gpu(2));
        let (at, transit) = f.begin(
            pair,
            Cycle::ZERO,
            WireParts::of(ByteSize::CACHELINE, TrafficClass::Data),
        );
        assert_eq!(at, Cycle::new(2 + 100)); // 64 B at 50 B/cy + latency
        match f.advance(transit, at) {
            HopOutcome::Delivered { at } => assert_eq!(at, Cycle::new(2 + 100 + 2)),
            other => panic!("expected delivery, got {other:?}"),
        }
    }

    #[test]
    fn ring_transit_forwards_then_delivers() {
        let mut f = fabric(TopologyKind::Ring, 8);
        let pair = PairId::new(NodeId::gpu(1), NodeId::gpu(3));
        let (at, transit) = f.begin(
            pair,
            Cycle::ZERO,
            WireParts::of(ByteSize::CACHELINE, TrafficClass::Data),
        );
        let HopOutcome::Forwarded { at, transit } = f.advance(transit, at) else {
            panic!("two-hop route must forward at GPU2");
        };
        let HopOutcome::Delivered { at } = f.advance(transit, at) else {
            panic!("second hop is the destination");
        };
        // Two store-and-forward legs of (2 ser + 100 lat + 2 ingress).
        assert_eq!(at, Cycle::new(2 * 104));
        // Bytes charged once per hop.
        assert_eq!(f.traffic_totals().get(TrafficClass::Data).as_u64(), 128);
    }

    #[test]
    fn transit_exposes_pair_and_bytes() {
        let mut f = fabric(TopologyKind::FullyConnected, 4);
        let pair = PairId::new(NodeId::gpu(2), NodeId::gpu(4));
        let mut parts = WireParts::of(ByteSize::new(64), TrafficClass::Data);
        parts.push(ByteSize::new(8), TrafficClass::Mac);
        let (_, transit) = f.begin(pair, Cycle::ZERO, parts);
        assert_eq!(transit.pair(), pair);
        assert_eq!(transit.bytes(), ByteSize::new(72));
    }
}
