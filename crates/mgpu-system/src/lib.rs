//! Full-system composition: the secure multi-GPU timing simulation.
//!
//! This crate wires the substrates together into the system the paper
//! evaluates: workload-generated remote requests flow through interconnect
//! links ([`mgpu_sim`]), are serviced from HBM at the owning node, pass
//! through each node's **secure NIC** — the AES-GCM engine, the configured
//! OTP buffer scheme and (optionally) the metadata batcher
//! ([`mgpu_secure`]) — and produce the execution-time, traffic and OTP
//! hit-rate metrics that the experiments crate turns into the paper's
//! tables and figures.
//!
//! # Examples
//!
//! ```
//! use mgpu_system::Simulation;
//! use mgpu_types::{OtpSchemeKind, SystemConfig};
//! use mgpu_workloads::Benchmark;
//!
//! let mut cfg = SystemConfig::paper_4gpu();
//! cfg.security.scheme = OtpSchemeKind::Unsecure;
//! let baseline = Simulation::new(cfg.clone(), Benchmark::Atax, 1).run_for_requests(500);
//!
//! cfg.security.scheme = OtpSchemeKind::Private;
//! let secure = Simulation::new(cfg, Benchmark::Atax, 1).run_for_requests(500);
//! assert!(secure.total_cycles >= baseline.total_cycles);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fabric;
pub mod flow;
pub mod harness;
pub mod metrics;
pub mod nic_pool;
pub mod node;
pub mod observer;
pub mod pacing;
pub mod runner;
mod sharded;
pub mod simulation;
pub mod timeseries;

pub use fabric::Fabric;
pub use flow::{CreditGate, CreditPool, Reject, WakeupLadder};
pub use harness::WireHarness;
pub use metrics::{LatencyReport, RunReport};
pub use observer::{
    circular_error, close_phase, FeatureSet, FeatureVector, NearestCentroid, PassiveObserver,
    PhaseEstimate,
};
pub use runner::{compare_schemes, compare_schemes_with, normalized_time, SchemeResult};
pub use simulation::{default_shards, set_default_shards, Simulation};
pub use timeseries::{
    FabricSample, IntervalSample, TimeSeriesCollector, Timeline, TimelineSummary, TraceEvent,
    TraceRecord,
};
