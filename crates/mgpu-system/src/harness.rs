//! Wire-level adversary harness: runs the *functional* secure channel in
//! lockstep with the timing simulation and injects seeded faults on the
//! wire between egress and ingress.
//!
//! The timing simulation (`simulation.rs`) models *when* bytes move; this
//! harness proves *that* the defenses catch a hostile interconnect while
//! they move. For every protected block the simulation delivers, the
//! harness seals a real AES-GCM block between functional [`Endpoint`]s
//! and, per the [`FaultPlan`]'s schedule, replays it, flips MAC bytes,
//! drops or forges the ACK, tampers with batch trailers, or reorders
//! blocks within a batch. Every injection must surface through an
//! existing defense — `ReplayGuard`, `MacStorage`, GCM tag verification,
//! or the sender's ACK timeout — and is accounted in a
//! [`SecurityEventLog`]; a defense error on *untouched* traffic is a
//! false positive. After each detection the harness retransmits the
//! genuine messages so one injection cannot mask the next.

use mgpu_secure::adversary::{FaultKind, FaultPlan, SecurityEvent, SecurityEventLog};
use mgpu_secure::channel::{Ack, BatchTrailer, Endpoint, WireBlock, BATCH_NONCE_BIT, BLOCK_SIZE};
use mgpu_secure::key_exchange::KeyExchange;
use mgpu_types::{Cycle, DenseNodeMap, Duration, NodeId, PairId, PairTable, SystemConfig};

/// Session key-exchange seed for the harness's functional endpoints. The
/// adversary model grants wire access, not key access, so any fixed seed
/// works and keeps runs reproducible.
const HARNESS_BOOT_KEY: [u8; 16] = [0x42; 16];

/// Receive-side bookkeeping for one in-flight batch on a `src → dst`
/// stream.
#[derive(Debug, Default)]
struct OpenBatch {
    /// Clean copies of every wire block, for post-detection retransmission.
    wires: Vec<WireBlock>,
    /// A fault already injected into this batch, with its injection time;
    /// it will be detected (or missed) when the trailer verifies.
    poison: Option<(FaultKind, Cycle)>,
    /// A block withheld by the adversary to swap with the next one
    /// (reorder attack staging).
    held: Option<WireBlock>,
}

/// The adversary-in-the-middle driver for one simulation run.
///
/// The simulation calls [`WireHarness::on_block`] for each protected
/// block it delivers, [`WireHarness::on_flush`] when a batcher timeout
/// closes a batch, and [`WireHarness::finish`] at end of run; each call
/// returns how many wire crossings the adversary tampered with (for the
/// topology's per-link accounting). [`WireHarness::into_log`] yields the
/// final ledger.
#[derive(Debug)]
pub struct WireHarness {
    endpoints: DenseNodeMap<Endpoint>,
    plan: FaultPlan,
    log: SecurityEventLog,
    batching: bool,
    /// How long the sender waits on a missing ACK before flagging it.
    ack_timeout: Duration,
    open: PairTable<OpenBatch>,
    seq: PairTable<u64>,
    /// When true, detections are additionally queued for the
    /// observability trace (drained via [`WireHarness::take_trace`]).
    tracing: bool,
    trace: Vec<SecurityEvent>,
}

impl WireHarness {
    /// Builds the harness for `config`: one functional endpoint per node,
    /// mirroring the configured batch parameters, and the seeded fault
    /// schedule from `config.adversary`.
    #[must_use]
    pub fn new(config: &SystemConfig) -> Self {
        let kx = KeyExchange::boot(HARNESS_BOOT_KEY);
        let batching = config.security.batching.enabled;
        let endpoints = NodeId::all(config.gpu_count)
            .map(|n| {
                let ep = Endpoint::new(n, config.gpu_count, &kx);
                let ep = if batching {
                    ep.with_batch_params(
                        config.security.batching.batch_size,
                        config.security.batching.flush_timeout,
                    )
                } else {
                    ep
                };
                (n, ep)
            })
            .collect();
        WireHarness {
            endpoints,
            plan: FaultPlan::new(&config.adversary),
            log: SecurityEventLog::new(),
            batching,
            // One round trip plus slack: a sender that still sees the
            // entry outstanding after this long knows the ACK was lost.
            ack_timeout: Duration::cycles(4 * config.link_latency.as_u64()),
            open: PairTable::new(),
            seq: PairTable::new(),
            tracing: config.observability.enabled,
            trace: Vec::new(),
        }
    }

    /// Drains detections queued since the last call (empty unless
    /// observability is enabled for the run).
    pub fn take_trace(&mut self) -> Vec<SecurityEvent> {
        std::mem::take(&mut self.trace)
    }

    /// Consumes the harness, returning the accumulated event log.
    #[must_use]
    pub fn into_log(self) -> SecurityEventLog {
        self.log
    }

    /// Deterministic per-message payload: the harness checks decrypted
    /// plaintext against this, independent of the fault schedule.
    fn payload(src: NodeId, dst: NodeId, seq: u64) -> [u8; BLOCK_SIZE] {
        let tag = (u64::from(src.raw()) << 48) | (u64::from(dst.raw()) << 32) | seq;
        let mut block = [0u8; BLOCK_SIZE];
        for (i, b) in block.iter_mut().enumerate() {
            *b = (tag
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .rotate_left((i % 64) as u32)
                >> 8) as u8;
        }
        block
    }

    fn next_seq(&mut self, src: NodeId, dst: NodeId) -> u64 {
        let s = self.seq.get_or_insert_with(PairId::new(src, dst), || 0);
        let out = *s;
        *s += 1;
        out
    }

    fn ep(&mut self, node: NodeId) -> &mut Endpoint {
        self.endpoints.get_mut(node).expect("node within system")
    }

    fn detect(&mut self, kind: FaultKind, src: NodeId, dst: NodeId, injected: Cycle, at: Cycle) {
        let event = SecurityEvent {
            kind,
            src,
            dst,
            injected_at: injected,
            detected_at: at,
        };
        if self.tracing {
            self.trace.push(event);
        }
        self.log.record_detection(event);
    }

    /// Flips one random bit of an 8-byte MAC.
    fn flip_mac_byte(&mut self, mac: &mut [u8; 8]) {
        let byte = self.plan.pick(mac.len());
        let bit = self.plan.pick(8) as u8;
        mac[byte] ^= 1 << bit;
    }

    /// A protected block crosses the wire from `src` to `dst` now.
    /// Returns the number of tampered crossings.
    pub fn on_block(&mut self, now: Cycle, src: NodeId, dst: NodeId) -> u64 {
        if self.batching {
            self.on_batched_block(now, src, dst)
        } else {
            self.on_unbatched_block(now, src, dst)
        }
    }

    fn on_unbatched_block(&mut self, now: Cycle, src: NodeId, dst: NodeId) -> u64 {
        let seq = self.next_seq(src, dst);
        let block = Self::payload(src, dst, seq);
        let wire = self.ep(src).seal_block(dst, &block);
        match self.plan.draw(&FaultKind::UNBATCHED_BLOCK) {
            None => match self.ep(dst).open_block(&wire) {
                Ok((plain, ack)) => {
                    if plain != block {
                        self.log.record_false_positive();
                    }
                    self.deliver_ack(now, src, &ack, None)
                }
                Err(_) => {
                    self.log.record_false_positive();
                    0
                }
            },
            Some(FaultKind::FlipMac) => {
                let mut bad = wire.clone();
                self.flip_mac_byte(bad.mac.as_mut().expect("unbatched block has MAC"));
                match self.ep(dst).open_block(&bad) {
                    Err(_) => self.detect(FaultKind::FlipMac, src, dst, now, now),
                    Ok(_) => self.log.record_miss(FaultKind::FlipMac),
                }
                // Verify-before-freshness: the forged copy must not have
                // burned the counter, so the genuine retransmission lands.
                match self.ep(dst).open_block(&wire) {
                    Ok((_, ack)) => {
                        self.deliver_ack(now, src, &ack, None);
                    }
                    Err(_) => self.log.record_false_positive(),
                }
                1
            }
            Some(FaultKind::ReplayBlock) => {
                // Deliver the genuine block first, then replay it.
                match self.ep(dst).open_block(&wire) {
                    Ok((_, ack)) => {
                        self.deliver_ack(now, src, &ack, None);
                    }
                    Err(_) => self.log.record_false_positive(),
                }
                match self.ep(dst).open_block(&wire) {
                    Err(_) => self.detect(FaultKind::ReplayBlock, src, dst, now, now),
                    Ok(_) => self.log.record_miss(FaultKind::ReplayBlock),
                }
                1
            }
            fault @ Some(FaultKind::DropAck | FaultKind::ForgeAck) => {
                match self.ep(dst).open_block(&wire) {
                    Ok((_, ack)) => self.deliver_ack(now, src, &ack, fault),
                    Err(_) => {
                        self.log.record_false_positive();
                        0
                    }
                }
            }
            Some(_) => unreachable!("draw restricted to UNBATCHED_BLOCK kinds"),
        }
    }

    /// Delivers (or attacks) the ACK returning to `to`. Returns tampered
    /// crossings.
    fn deliver_ack(&mut self, now: Cycle, to: NodeId, ack: &Ack, fault: Option<FaultKind>) -> u64 {
        let (src, dst) = (to, ack.from);
        match fault {
            Some(FaultKind::ForgeAck) => {
                let mut bad = *ack;
                self.flip_mac_byte(&mut bad.mac);
                match self.ep(to).accept_ack(&bad) {
                    Err(_) => self.detect(FaultKind::ForgeAck, src, dst, now, now),
                    Ok(()) => self.log.record_miss(FaultKind::ForgeAck),
                }
                // The outstanding entry survives the forgery; the genuine
                // ACK (retransmitted by the receiver) still clears it.
                if self.ep(to).accept_ack(ack).is_err() {
                    self.log.record_false_positive();
                }
                1
            }
            Some(FaultKind::DropAck) => {
                // The ACK never arrives. The sender notices the entry
                // still outstanding once its timeout expires.
                if self.ep(to).ack_outstanding(ack.from, ack.counter) {
                    let detected = now + self.ack_timeout;
                    self.detect(FaultKind::DropAck, src, dst, now, detected);
                } else {
                    self.log.record_miss(FaultKind::DropAck);
                }
                // Receiver retransmits the ACK after the timeout.
                if self.ep(to).accept_ack(ack).is_err() {
                    self.log.record_false_positive();
                }
                1
            }
            _ => {
                if self.ep(to).accept_ack(ack).is_err() {
                    self.log.record_false_positive();
                }
                0
            }
        }
    }

    fn on_batched_block(&mut self, now: Cycle, src: NodeId, dst: NodeId) -> u64 {
        let key = PairId::new(src, dst);
        let seq = self.next_seq(src, dst);
        let block = Self::payload(src, dst, seq);
        let (wire, trailer) = self.ep(src).seal_batched_block(dst, &block);
        let mut tampered = 0u64;

        let held = self
            .open
            .get_or_insert_with(key, OpenBatch::default)
            .held
            .take();
        if let Some(mut early) = held {
            // Apply the staged reorder: swap the two blocks' batch-index
            // labels, then deliver both. Lazy verification accepts them;
            // the trailer's batched MAC covers MAC *order* and trips.
            let mut late = wire.clone();
            let (e, l) = (
                early.batch.expect("batched block"),
                late.batch.expect("batched block"),
            );
            early.batch = Some((e.0, l.1));
            late.batch = Some((l.0, e.1));
            for swapped in [&early, &late] {
                if self.ep(dst).open_batched_block(swapped).is_err() {
                    // Reordering is invisible until the trailer; an error
                    // here means a defense fired on plausible traffic.
                    self.log.record_false_positive();
                }
            }
            let state = self.open.get_or_insert_with(key, OpenBatch::default);
            state.poison = Some((FaultKind::ReorderBatch, now));
            state.wires.push(wire.clone());
            tampered += 2;
        } else {
            let poisoned = self.open.get(key).is_some_and(|s| s.poison.is_some());
            let fault = if poisoned {
                None // one poison per batch keeps attribution exact
            } else {
                self.plan.draw(&FaultKind::BATCHED_BLOCK)
            };
            match fault {
                Some(FaultKind::FlipMac) => {
                    // Batched blocks carry no wire MAC; flipping ciphertext
                    // corrupts the MAC recomputed at the receiver.
                    let mut bad = wire.clone();
                    let byte = self.plan.pick(bad.ciphertext.len());
                    let bit = self.plan.pick(8) as u8;
                    bad.ciphertext[byte] ^= 1 << bit;
                    match self.ep(dst).open_batched_block(&bad) {
                        // Lazy path: tampering is latent until the trailer.
                        Ok(_) => {
                            self.open.get_or_insert_with(key, OpenBatch::default).poison =
                                Some((FaultKind::FlipMac, now));
                        }
                        // Caught even earlier than expected (e.g. storage
                        // guard) — still a detection.
                        Err(_) => self.detect(FaultKind::FlipMac, src, dst, now, now),
                    }
                    self.open
                        .get_or_insert_with(key, OpenBatch::default)
                        .wires
                        .push(wire.clone());
                    tampered += 1;
                }
                Some(FaultKind::ReplayBlock) => {
                    if self.ep(dst).open_batched_block(&wire).is_err() {
                        self.log.record_false_positive();
                    }
                    // The duplicate hits an occupied MsgMAC-storage slot.
                    match self.ep(dst).open_batched_block(&wire) {
                        Err(_) => self.detect(FaultKind::ReplayBlock, src, dst, now, now),
                        Ok(_) => self.log.record_miss(FaultKind::ReplayBlock),
                    }
                    self.open
                        .get_or_insert_with(key, OpenBatch::default)
                        .wires
                        .push(wire.clone());
                    tampered += 1;
                }
                Some(FaultKind::ReorderBatch) if trailer.is_none() => {
                    // Stage: withhold this block, swap it with the next.
                    let state = self.open.get_or_insert_with(key, OpenBatch::default);
                    state.held = Some(wire.clone());
                    state.wires.push(wire.clone());
                }
                _ => {
                    // Clean delivery (includes ReorderBatch drawn on the
                    // batch-closing block, where no partner can follow —
                    // the injection simply does not happen).
                    match self.ep(dst).open_batched_block(&wire) {
                        Ok((plain, ack)) => {
                            if plain != block {
                                self.log.record_false_positive();
                            }
                            if let Some(ack) = ack {
                                self.deliver_ack(now, src, &ack, None);
                            }
                        }
                        Err(_) => self.log.record_false_positive(),
                    }
                    self.open
                        .get_or_insert_with(key, OpenBatch::default)
                        .wires
                        .push(wire.clone());
                }
            }
        }

        if let Some(trailer) = trailer {
            tampered += self.on_trailer(now, src, dst, &trailer);
        }
        tampered
    }

    /// A batch trailer crosses the wire. Returns tampered crossings.
    fn on_trailer(&mut self, now: Cycle, src: NodeId, dst: NodeId, trailer: &BatchTrailer) -> u64 {
        let state = self.open.remove(PairId::new(src, dst)).unwrap_or_default();

        if let Some((kind, injected_at)) = state.poison {
            // A fault latent in this batch must surface when the genuine
            // trailer fails to verify against the corrupted stored MACs.
            match self.ep(dst).accept_trailer(trailer) {
                Err(_) => self.detect(kind, src, dst, injected_at, now),
                Ok(Some(ack)) => {
                    // The poison went undetected and the batch completed —
                    // a hole. Finish the exchange and report the miss.
                    self.log.record_miss(kind);
                    self.deliver_ack(now, src, &ack, None);
                    return 0;
                }
                Ok(None) => self.log.record_miss(kind),
            }
            // Recovery: drop the poisoned receive state and retransmit
            // the clean blocks; the trailer retransmission below is
            // itself a fresh attack opportunity.
            self.ep(dst).discard_batch(src, trailer.id);
            for wire in &state.wires {
                if self.ep(dst).open_batched_block(wire).is_err() {
                    self.log.record_false_positive();
                }
            }
        }

        self.deliver_trailer(now, src, dst, trailer)
    }

    /// Delivers (or attacks) a trailer whose batch is cleanly stored at
    /// the receiver. Returns tampered crossings.
    fn deliver_trailer(
        &mut self,
        now: Cycle,
        src: NodeId,
        dst: NodeId,
        trailer: &BatchTrailer,
    ) -> u64 {
        match self.plan.draw(&FaultKind::TRAILER) {
            None => {
                match self.ep(dst).accept_trailer(trailer) {
                    Ok(Some(ack)) => {
                        self.deliver_ack(now, src, &ack, None);
                    }
                    _ => self.log.record_false_positive(),
                }
                0
            }
            Some(FaultKind::TamperTrailerMac) => {
                let mut bad = *trailer;
                self.flip_mac_byte(&mut bad.mac);
                match self.ep(dst).accept_trailer(&bad) {
                    Err(_) => self.detect(FaultKind::TamperTrailerMac, src, dst, now, now),
                    Ok(_) => self.log.record_miss(FaultKind::TamperTrailerMac),
                }
                // Stored MACs and batch id survive (fixed in
                // `accept_trailer`): the genuine trailer completes.
                match self.ep(dst).accept_trailer(trailer) {
                    Ok(Some(ack)) => {
                        self.deliver_ack(now, src, &ack, None);
                    }
                    _ => self.log.record_false_positive(),
                }
                1
            }
            Some(FaultKind::TamperTrailerLen) => {
                let shrink = self.plan.next_u64().is_multiple_of(2);
                let bad = BatchTrailer {
                    len: if shrink {
                        trailer.len - 1
                    } else {
                        trailer.len + 1
                    },
                    ..*trailer
                };
                match self.ep(dst).accept_trailer(&bad) {
                    // Under-length: impossible count, rejected inline.
                    Err(_) => self.detect(FaultKind::TamperTrailerLen, src, dst, now, now),
                    // Over-length: parks awaiting a block that never
                    // comes; the sender's ACK timeout flags it.
                    Ok(None) => {
                        if self
                            .ep(src)
                            .ack_outstanding(dst, trailer.id | BATCH_NONCE_BIT)
                        {
                            let detected = now + self.ack_timeout;
                            self.detect(FaultKind::TamperTrailerLen, src, dst, now, detected);
                        } else {
                            self.log.record_miss(FaultKind::TamperTrailerLen);
                        }
                    }
                    Ok(Some(_)) => self.log.record_miss(FaultKind::TamperTrailerLen),
                }
                match self.ep(dst).accept_trailer(trailer) {
                    Ok(Some(ack)) => {
                        self.deliver_ack(now, src, &ack, None);
                    }
                    _ => self.log.record_false_positive(),
                }
                1
            }
            fault @ Some(FaultKind::DropAck | FaultKind::ForgeAck) => {
                match self.ep(dst).accept_trailer(trailer) {
                    Ok(Some(ack)) => self.deliver_ack(now, src, &ack, fault),
                    _ => {
                        self.log.record_false_positive();
                        0
                    }
                }
            }
            Some(_) => unreachable!("draw restricted to TRAILER kinds"),
        }
    }

    /// The `src` batcher's flush timeout fired for its batch towards
    /// `dst`. Returns tampered crossings.
    pub fn on_flush(&mut self, now: Cycle, src: NodeId, dst: NodeId) -> u64 {
        let mut tampered = 0;
        // A block withheld for reordering loses its swap partner when the
        // batch closes under it: release it clean.
        let held = self
            .open
            .get_mut(PairId::new(src, dst))
            .and_then(|s| s.held.take());
        if let Some(wire) = held {
            if self.ep(dst).open_batched_block(&wire).is_err() {
                self.log.record_false_positive();
            }
        }
        if let Some(trailer) = self.ep(src).flush_batch(dst) {
            tampered += self.on_trailer(now, src, dst, &trailer);
        }
        tampered
    }

    /// End of run: flush every still-open batch. Returns per-source
    /// tampered-crossing counts.
    #[must_use]
    pub fn finish(&mut self, now: Cycle) -> Vec<(NodeId, u64)> {
        let keys: Vec<PairId> = self.open.keys().collect();
        let mut per_src: DenseNodeMap<u64> = DenseNodeMap::new();
        for pair in keys {
            let n = self.on_flush(now, pair.src, pair.dst);
            if n > 0 {
                *per_src.get_or_insert_with(pair.src, || 0) += n;
            }
        }
        per_src.iter().map(|(n, &count)| (n, count)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mgpu_types::AdversaryConfig;

    fn config(rate: u32, batching: bool) -> SystemConfig {
        let mut cfg = SystemConfig::paper_4gpu();
        cfg.security.batching.enabled = batching;
        cfg.adversary = AdversaryConfig::active(rate);
        cfg
    }

    fn drive(cfg: &SystemConfig, blocks: usize) -> SecurityEventLog {
        let mut h = WireHarness::new(cfg);
        let pairs = [
            (NodeId::gpu(1), NodeId::gpu(2)),
            (NodeId::gpu(2), NodeId::gpu(3)),
            (NodeId::gpu(3), NodeId::gpu(1)),
        ];
        for i in 0..blocks {
            let (src, dst) = pairs[i % pairs.len()];
            h.on_block(Cycle::new(i as u64 * 10), src, dst);
        }
        let _ = h.finish(Cycle::new(blocks as u64 * 10));
        h.into_log()
    }

    #[test]
    fn clean_run_logs_nothing() {
        for batching in [false, true] {
            let log = drive(&config(0, batching), 200);
            assert!(log.is_clean(), "batching={batching}: {log:?}");
        }
    }

    #[test]
    fn unbatched_faults_are_all_detected() {
        let log = drive(&config(300, false), 600);
        assert!(log.total_injected() > 0);
        assert_eq!(log.total_missed(), 0, "{log:?}");
        assert_eq!(log.false_positives(), 0, "{log:?}");
        assert!((log.detection_rate() - 1.0).abs() < f64::EPSILON);
        for kind in FaultKind::UNBATCHED_BLOCK {
            assert!(log.injected_of(kind) > 0, "no {kind} injected");
        }
    }

    #[test]
    fn batched_faults_are_all_detected() {
        let log = drive(&config(300, true), 900);
        assert!(log.total_injected() > 0);
        assert_eq!(log.total_missed(), 0, "{log:?}");
        assert_eq!(log.false_positives(), 0, "{log:?}");
        for kind in FaultKind::ALL {
            assert!(log.injected_of(kind) > 0, "no {kind} injected: {log:?}");
        }
    }

    #[test]
    fn same_seed_same_log() {
        let a = drive(&config(150, true), 500);
        let b = drive(&config(150, true), 500);
        assert_eq!(a, b);
    }

    #[test]
    fn dropped_acks_detect_after_timeout() {
        let log = drive(&config(1000, false), 200);
        if log.detected_of(FaultKind::DropAck) > 0 {
            assert!(log.mean_time_to_detection() > 0.0);
        }
        assert_eq!(log.total_missed(), 0);
    }
}
