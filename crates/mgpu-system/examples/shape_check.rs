//! Calibration dashboard: normalized execution times for every scheme on
//! a representative benchmark subset — the quickest way to eyeball the
//! paper's orderings after a model change.
//!
//! ```text
//! cargo run --release -p mgpu-system --example shape_check
//! ```

use mgpu_system::runner::{compare_schemes, configs};
use mgpu_types::SystemConfig;
use mgpu_workloads::Benchmark;

fn main() {
    let base = SystemConfig::paper_4gpu();
    let cfgs = vec![
        ("private4".to_string(), configs::private(&base, 4)),
        ("private16".to_string(), configs::private(&base, 16)),
        ("shared".to_string(), configs::shared(&base, 4)),
        ("cached".to_string(), configs::cached(&base, 4)),
        ("dynamic".to_string(), configs::dynamic(&base, 4)),
        ("batching".to_string(), configs::batching(&base, 4)),
    ];
    println!(
        "{:8} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9}",
        "bench", "priv4", "priv16", "shared", "cached", "dyn", "batch"
    );
    let mut sums = vec![0.0; 6];
    let benches = [
        Benchmark::MatrixTranspose,
        Benchmark::PageRank,
        Benchmark::Spmv,
        Benchmark::MatrixMultiplication,
        Benchmark::Atax,
        Benchmark::Fft,
        Benchmark::Kmeans,
        Benchmark::FloydWarshall,
        Benchmark::Aes,
        Benchmark::Fir,
    ];
    for b in benches {
        let rs = compare_schemes(b, &cfgs, 1500, 42);
        print!("{:8}", b.abbrev());
        for (i, r) in rs.iter().enumerate() {
            print!(" {:9.3}", r.normalized_time);
            sums[i] += r.normalized_time.ln();
        }
        println!();
    }
    print!("{:8}", "geomean");
    for s in &sums {
        print!(" {:9.3}", (s / benches.len() as f64).exp());
    }
    println!();
    // traffic ratios
    let rs = compare_schemes(Benchmark::MatrixTranspose, &cfgs, 1500, 42);
    println!(
        "mt traffic: priv4={:.3} batch={:.3}",
        rs[0].traffic_ratio, rs[5].traffic_ratio
    );
}
