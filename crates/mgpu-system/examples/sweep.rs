//! Calibration sweep over workload parameters (burst size, spacing,
//! inter-burst gap, kernel MLP): prints the scheme-ordering vector for
//! each point so parameter regions reproducing the paper's orderings are
//! easy to spot.
//!
//! ```text
//! cargo run --release -p mgpu-system --example sweep
//! ```
use mgpu_system::runner::configs;
use mgpu_system::Simulation;
use mgpu_types::{OtpSchemeKind, SystemConfig};
use mgpu_workloads::{Benchmark, WorkloadParams};

fn main() {
    let base = SystemConfig::paper_4gpu();
    println!(
        "{:>4} {:>5} {:>5} {:>4} {:>7} {:>7} {:>7} {:>7} {:>7} {:>7}",
        "out", "burst", "intra", "intr", "priv4", "priv16", "shared", "cached", "dyn", "batch"
    );
    for outstanding in [24u32, 48, 96] {
        for burst in [24u32, 40] {
            for intra in [1u64, 2] {
                for inter in [60u64, 120] {
                    let params = WorkloadParams {
                        burst_len_mean: burst,
                        intra_burst_gap: intra,
                        inter_burst_gap_mean: inter,
                        locality: 0.7,
                        cpu_weight: 0.1,
                        migration_fraction: 0.03,
                        phase_len: 60_000,
                        duty_variation: 0.6,
                        outstanding,
                    };
                    let mut uns = base.clone();
                    uns.security.scheme = OtpSchemeKind::Unsecure;
                    let b = Simulation::new(uns, Benchmark::MatrixTranspose, 42)
                        .with_workload_params(params)
                        .run_for_requests(1200);
                    let mut row = Vec::new();
                    for cfg in [
                        configs::private(&base, 4),
                        configs::private(&base, 16),
                        configs::shared(&base, 4),
                        configs::cached(&base, 4),
                        configs::dynamic(&base, 4),
                        configs::batching(&base, 4),
                    ] {
                        let r = Simulation::new(cfg, Benchmark::MatrixTranspose, 42)
                            .with_workload_params(params)
                            .run_for_requests(1200);
                        row.push(r.total_cycles.as_u64() as f64 / b.total_cycles.as_u64() as f64);
                    }
                    println!(
                        "{:>4} {:>5} {:>5} {:>4} {:>7.3} {:>7.3} {:>7.3} {:>7.3} {:>7.3} {:>7.3}",
                        outstanding,
                        burst,
                        intra,
                        inter,
                        row[0],
                        row[1],
                        row[2],
                        row[3],
                        row[4],
                        row[5]
                    );
                }
            }
        }
    }
}
