//! `leakage` experiment: the security/overhead frontier of the
//! traffic-shape defenses against a passive contention-channel observer.
//!
//! A co-tenant sharing the victim's fabric ports
//! ([`mgpu_system::PassiveObserver`]) watches per-port control-channel
//! byte/grant deltas and tries to (a) classify which protected scheme is
//! running via a nearest-centroid model trained on seeded runs, and
//! (b) recover the metadata batcher's flush phase from grant timing.
//! The sweep runs every defense variant (none, batch-close jitter,
//! constant-rate shaping, both) over the Private/Dynamic/Batching
//! schemes with disjoint train and test seed pools, and reports:
//!
//! * `acc-ctrl` — classifier accuracy on control-channel features only
//!   (the channel the constant-rate defense shapes; the headline score).
//!   Chance is 1/3. At-chance accuracy means the shaped channel carries
//!   no scheme information.
//! * `acc-full` — accuracy with data-port features added (byte deltas,
//!   busy horizon, queue depth): residual leakage that shaping the
//!   metadata channel does not claim to remove.
//! * `phase-lock` / `phase-err` — the batch-close phase channel, probed
//!   on dedicated burst-periodic victim traces (closes only carry a
//!   clock phase when the workload does): `phase-lock` is the
//!   ground-truth concentration of the victim's timeout-close phases
//!   (the structure close-jitter destroys), `phase-err` the circular
//!   error (cycles) of the phase the observer recovers from grant
//!   timing against that ground truth.
//! * `chaff-share`, `traffic-ovh`, `latency-ovh` — what the defense
//!   costs: the chaff fraction of all fabric bytes, and total-traffic /
//!   p95-latency inflation against the undefended twin runs.
//!
//! The sampling interval and the shaping period share one constant
//! ([`SAMPLE_INTERVAL`]), so every observation boundary lands on a
//! whole number of shaping periods — the precondition under which the
//! quota-based chaff makes per-port control observations bit-identical
//! across schemes (see `DESIGN.md` §14).
//!
//! When `MGPU_LEAKAGE_CSV` names a path, the frontier table is also
//! written there as CSV (the CI `leakage_smoke` step consumes it).

use crate::common::{workers, Mode};
use crate::report::{percent, ratio, Table};
use mgpu_sim::link::TrafficClass;
use mgpu_sim::stats::percentile_sorted;
use mgpu_system::runner::configs;
use mgpu_system::timeseries::Timeline;
use mgpu_system::{
    circular_error, close_phase, FeatureSet, FeatureVector, NearestCentroid, PassiveObserver,
    RunReport, Simulation,
};
use mgpu_types::{Cycle, DefenseConfig, Duration, NodeId, ObservabilityConfig, SystemConfig};
use mgpu_workloads::{Benchmark, Request};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Observation window and shaping period, in cycles. One constant keeps
/// the constant-rate identity precondition (samples land on shaping-period
/// boundaries) true by construction. Shorter than the default repartition
/// interval so the phase probe has sub-period resolution against the
/// 160-cycle flush timeout.
pub const SAMPLE_INTERVAL: u64 = 40;

/// Shaping envelope: ctrl-VC bytes per directed pair per
/// [`SAMPLE_INTERVAL`]. Generous — the envelope must bound the true
/// cumulative ctrl rate at every observation boundary for the shaped
/// channel to be workload-independent (checked by the
/// `constant_rate_equalizes_ctrl_observations` proptest in
/// `mgpu-system`).
pub const SHAPE_BYTES: u32 = 512;

/// Shaping envelope on arbitration grants per directed pair per
/// [`SAMPLE_INTERVAL`]: the channel is padded to this many ctrl-VC
/// grants, because an observer counts arbitration slots as well as
/// bytes. Generous for the same reason as [`SHAPE_BYTES`].
pub const SHAPE_GRANTS: u32 = 32;

/// Seeds for the observer's training runs.
const TRAIN_SEEDS: [u64; 3] = [101, 102, 103];
/// Seeds for the held-out test runs (disjoint from training).
const TEST_SEEDS: [u64; 3] = [201, 202, 203];

/// The fixed victim workload; the classes are the protection schemes.
const BENCHMARK: Benchmark = Benchmark::MatrixTranspose;

/// Remote requests per GPU for one leakage run.
fn requests(mode: Mode) -> usize {
    match mode {
        Mode::Full => 400,
        Mode::Quick => 150,
        Mode::Bench => 60,
    }
}

/// One defended cell of the frontier: a defense variant's leakage scores
/// and overhead costs, aggregated over schemes and test seeds.
#[derive(Debug, Clone)]
pub struct LeakageCell {
    /// Defense variant label (`none`, `jitter`, `constant-rate`, `both`).
    pub defense: String,
    /// Test-set classifier accuracy on control-channel features.
    pub acc_ctrl: f64,
    /// Test-set classifier accuracy with data-port features added.
    pub acc_full: f64,
    /// Mean ground-truth concentration (resultant length) of the victim's
    /// timeout-close phases over the burst-periodic phase cells — the
    /// structure batch-close jitter is meant to destroy.
    pub phase_lock: Option<f64>,
    /// Mean circular error (cycles) of the observer's recovered phase
    /// against the ground-truth close phase, over the same cells.
    pub phase_err: Option<f64>,
    /// Chaff bytes as a fraction of all fabric bytes in this variant.
    pub chaff_fraction: f64,
    /// Total fabric bytes vs. the undefended twin runs, minus one.
    pub traffic_overhead: f64,
    /// Summed p95 request latency vs. the undefended twins, minus one.
    pub latency_overhead: f64,
}

/// The whole sweep, in frontier order (folded into `BENCH_repro.json`).
#[derive(Debug, Clone)]
pub struct LeakageSummary {
    /// Remote requests per GPU in each run.
    pub requests_per_gpu: usize,
    /// Number of scheme classes the observer distinguishes.
    pub classes: usize,
    /// Held-out test runs scored per variant.
    pub test_runs: usize,
    /// One cell per defense variant.
    pub cells: Vec<LeakageCell>,
}

impl LeakageSummary {
    /// Chance accuracy for this sweep's class count.
    #[must_use]
    pub fn chance(&self) -> f64 {
        1.0 / self.classes as f64
    }

    /// The cell for a defense variant, if present.
    #[must_use]
    pub fn cell(&self, defense: &str) -> Option<&LeakageCell> {
        self.cells.iter().find(|c| c.defense == defense)
    }
}

/// The scheme classes the observer tries to tell apart.
fn scheme_configs(base: &SystemConfig) -> Vec<(String, SystemConfig)> {
    vec![
        ("private".into(), configs::private(base, 4)),
        ("dynamic".into(), configs::dynamic(base, 4)),
        ("batching".into(), configs::batching(base, 4)),
    ]
}

/// The defense variants swept into the frontier. The jittered variants
/// widen the bound to the full flush period: the default bound only
/// shifts the circular-mean phase by a constant, which an averaging
/// observer calibrates away — spreading closes over the whole period is
/// what destroys the lock.
fn defense_variants(flush_timeout: Duration) -> Vec<(&'static str, DefenseConfig)> {
    let shaped = DefenseConfig {
        shape_bytes: SHAPE_BYTES,
        shape_grants: SHAPE_GRANTS,
        shape_period: Duration::cycles(SAMPLE_INTERVAL),
        ..DefenseConfig::constant_rate()
    };
    let jittered = DefenseConfig {
        jitter_bound: flush_timeout,
        ..DefenseConfig::jittered()
    };
    let both = DefenseConfig {
        close_jitter: true,
        jitter_bound: flush_timeout,
        ..shaped
    };
    vec![
        ("none", DefenseConfig::default()),
        ("jitter", jittered),
        ("constant-rate", shaped),
        ("both", both),
    ]
}

/// One observed run: its class label, seed, and full report.
struct ObservedRun {
    scheme: String,
    report: RunReport,
}

impl ObservedRun {
    fn timeline(&self) -> &Timeline {
        self.report
            .timeline
            .as_ref()
            .expect("observability-enabled run attaches a timeline")
    }
}

/// A scheme config prepared for observation under `defense`: telemetry
/// on, sampling at [`SAMPLE_INTERVAL`] (which also pins the repartition
/// interval — identical across variants, so it cancels out of every
/// comparison).
fn observed_config(scheme_cfg: &SystemConfig, defense: DefenseConfig) -> SystemConfig {
    let mut cfg = scheme_cfg.clone();
    cfg.observability = ObservabilityConfig::enabled();
    cfg.security.dynamic.interval = Duration::cycles(SAMPLE_INTERVAL);
    cfg.security.defense = defense;
    cfg
}

/// Runs every `(scheme, seed)` cell under `defense`, fanned across the
/// shared worker budget. Output order is `schemes × seeds`, row-major —
/// deterministic, so twin runs across variants align by index.
fn run_variant(
    schemes: &[(String, SystemConfig)],
    seeds: &[u64],
    defense: DefenseConfig,
    mode: Mode,
) -> Vec<ObservedRun> {
    let jobs: Vec<(String, SystemConfig, u64)> = schemes
        .iter()
        .flat_map(|(label, cfg)| {
            seeds
                .iter()
                .map(|&seed| (label.clone(), observed_config(cfg, defense), seed))
        })
        .collect();
    let n = jobs.len();
    let per_gpu = requests(mode);
    let slots: Vec<Mutex<Option<ObservedRun>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    let worker_count = workers().min(n).max(1);
    std::thread::scope(|scope| {
        for _ in 0..worker_count {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let (scheme, cfg, seed) = &jobs[i];
                let report =
                    Simulation::new(cfg.clone(), BENCHMARK, *seed).run_for_requests(per_gpu);
                *slots[i].lock().expect("result slot poisoned") = Some(ObservedRun {
                    scheme: scheme.clone(),
                    report,
                });
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("every job index is visited")
        })
        .collect()
}

/// Trains a nearest-centroid model on `train` and scores it on `test`.
fn accuracy(observer: &PassiveObserver, train: &[&ObservedRun], test: &[&ObservedRun]) -> f64 {
    let examples: Vec<(String, FeatureVector)> = train
        .iter()
        .map(|r| (r.scheme.clone(), observer.features(r.timeline())))
        .collect();
    let model = NearestCentroid::train(&examples);
    let correct = test
        .iter()
        .filter(|r| model.classify(&observer.features(r.timeline())) == r.scheme)
        .count();
    correct as f64 / test.len() as f64
}

/// Bursts in one phase-probe victim trace.
fn phase_bursts(mode: Mode) -> u64 {
    match mode {
        Mode::Full => 60,
        Mode::Quick => 30,
        Mode::Bench => 15,
    }
}

/// Requests per burst: well under the batch size, so every batch closes
/// by flush timeout — the channel under probe.
const BURST_REQUESTS: u64 = 6;

/// Burst cadence of the phase-probe victim, a whole multiple of the
/// 160-cycle flush timeout so undefended closes land at one clock phase.
const BURST_PERIOD: u64 = 480;

/// The phase-probe victim trace: GPU 2 pulls a small burst from GPU 1
/// once per [`BURST_PERIOD`]. Each burst opens one metadata batch at
/// GPU 1 that closes by timeout one flush period later, so the victim's
/// close phase (mod the flush timeout) is fixed — until close jitter
/// spreads it.
fn phase_trace(mode: Mode) -> Vec<Request> {
    let mut reqs = Vec::new();
    for k in 0..phase_bursts(mode) {
        for j in 0..BURST_REQUESTS {
            let at = Cycle::new(k * BURST_PERIOD + j);
            reqs.push(Request::direct(at, NodeId::gpu(2), NodeId::gpu(1)));
        }
    }
    reqs
}

/// Runs the burst-periodic phase cells for one defense variant, one per
/// test seed. The trace pins the arrivals, so the seeds vary the only
/// randomness that matters here — the jitter stream (`jitter_seed` is
/// mixed per run; with a fixed seed every run would draw identical
/// offsets and the jittered statistics would be a single sample).
fn phase_runs(base: &SystemConfig, defense: DefenseConfig, mode: Mode) -> Vec<RunReport> {
    let cfg = observed_config(&configs::batching(base, 4), defense);
    TEST_SEEDS
        .iter()
        .map(|&seed| {
            let mut cfg = cfg.clone();
            cfg.security.defense.jitter_seed = cfg.security.defense.jitter_seed.wrapping_add(seed);
            Simulation::new(cfg, BENCHMARK, seed).run_trace(phase_trace(mode))
        })
        .collect()
}

/// Mean ground-truth close-phase lock and mean probe error over the
/// phase cells; `None` components when a run produced no estimate.
fn phase_stats(
    observer: &PassiveObserver,
    runs: &[RunReport],
    period: Duration,
) -> (Option<f64>, Option<f64>) {
    let mut locks = Vec::new();
    let mut errors = Vec::new();
    for report in runs {
        let tl = report
            .timeline
            .as_ref()
            .expect("observability-enabled run attaches a timeline");
        if let Some(truth) = close_phase(tl, period) {
            locks.push(truth.lock);
            if let Some(est) = observer.phase_probe(tl, period) {
                errors.push(circular_error(
                    est.phase,
                    truth.phase,
                    period.as_u64() as f64,
                ));
            }
        }
    }
    let mean = |xs: &[f64]| {
        if xs.is_empty() {
            None
        } else {
            Some(xs.iter().sum::<f64>() / xs.len() as f64)
        }
    };
    (mean(&locks), mean(&errors))
}

/// Summed fabric bytes over a variant's runs, total and chaff-only.
fn traffic_totals(runs: &[ObservedRun]) -> (f64, f64) {
    let total: u64 = runs.iter().map(|r| r.report.traffic.total().as_u64()).sum();
    let chaff: u64 = runs
        .iter()
        .map(|r| r.report.traffic.get(TrafficClass::Chaff).as_u64())
        .sum();
    (total as f64, chaff as f64)
}

/// Summed per-run p95 request latency over a variant's runs. The latency
/// vectors are kept sorted by `LatencyReport::finish`, so the percentile
/// reads are O(1).
fn latency_p95_sum(runs: &[ObservedRun]) -> f64 {
    runs.iter()
        .filter_map(|r| percentile_sorted(&r.report.latency.total, 95.0))
        .sum()
}

/// Runs the full defense × scheme × seed sweep and scores every variant.
#[must_use]
pub fn sweep(mode: Mode) -> LeakageSummary {
    let base = SystemConfig::paper_4gpu();
    let schemes = scheme_configs(&base);
    let flush_timeout = schemes
        .iter()
        .find(|(label, _)| label == "batching")
        .map(|(_, cfg)| cfg.security.batching.flush_timeout)
        .expect("batching class present");
    let ports: Vec<String> = (1..=base.gpu_count).map(|g| format!("gpu{g}")).collect();
    let port_refs: Vec<&str> = ports.iter().map(String::as_str).collect();
    let obs_ctrl = PassiveObserver::on_ports(&port_refs, FeatureSet::Ctrl);
    let obs_full = PassiveObserver::on_ports(&port_refs, FeatureSet::Full);

    let seeds: Vec<u64> = TRAIN_SEEDS.iter().chain(&TEST_SEEDS).copied().collect();

    let mut baseline: Option<(f64, f64)> = None; // (total bytes, p95 sum) of "none"
    let mut cells = Vec::new();
    for (name, defense) in defense_variants(flush_timeout) {
        let runs = run_variant(&schemes, &seeds, defense, mode);
        // Row-major schemes × seeds: the first TRAIN_SEEDS.len() of each
        // scheme's block are training runs, the rest are held out.
        let is_train = |i: usize| i % seeds.len() < TRAIN_SEEDS.len();
        let train: Vec<&ObservedRun> = runs
            .iter()
            .enumerate()
            .filter_map(|(i, r)| is_train(i).then_some(r))
            .collect();
        let test: Vec<&ObservedRun> = runs
            .iter()
            .enumerate()
            .filter_map(|(i, r)| (!is_train(i)).then_some(r))
            .collect();
        let acc_ctrl = accuracy(&obs_ctrl, &train, &test);
        let acc_full = accuracy(&obs_full, &train, &test);
        let (phase_lock, phase_err) =
            phase_stats(&obs_ctrl, &phase_runs(&base, defense, mode), flush_timeout);
        let (total, chaff) = traffic_totals(&runs);
        let p95_sum = latency_p95_sum(&runs);
        let (base_total, base_p95) = *baseline.get_or_insert((total, p95_sum));
        cells.push(LeakageCell {
            defense: name.to_string(),
            acc_ctrl,
            acc_full,
            phase_lock,
            phase_err,
            chaff_fraction: if total > 0.0 { chaff / total } else { 0.0 },
            traffic_overhead: if base_total > 0.0 {
                total / base_total - 1.0
            } else {
                0.0
            },
            latency_overhead: if base_p95 > 0.0 {
                p95_sum / base_p95 - 1.0
            } else {
                0.0
            },
        });
    }
    LeakageSummary {
        requests_per_gpu: requests(mode),
        classes: schemes.len(),
        test_runs: TEST_SEEDS.len() * schemes.len(),
        cells,
    }
}

/// The sweep's summary (folded into `BENCH_repro.json` by `repro`).
#[must_use]
pub fn summary(mode: Mode) -> LeakageSummary {
    sweep(mode)
}

/// The `leakage` experiment: the security/overhead frontier table.
#[must_use]
pub fn leakage(mode: Mode) -> Vec<Table> {
    let s = sweep(mode);
    let mut t = Table::new(
        format!(
            "Leakage frontier: passive observer vs traffic-shape defenses \
             (chance = {:.3}, {} test runs)",
            s.chance(),
            s.test_runs
        ),
        &[
            "defense",
            "acc-ctrl",
            "acc-full",
            "phase-lock",
            "phase-err-cy",
            "chaff-share",
            "traffic-ovh",
            "latency-ovh",
        ],
    );
    let opt = |x: Option<f64>| x.map_or_else(|| "-".to_string(), |v| format!("{v:.3}"));
    for c in &s.cells {
        t.add_row(vec![
            c.defense.clone(),
            format!("{:.3}", c.acc_ctrl),
            format!("{:.3}", c.acc_full),
            opt(c.phase_lock),
            opt(c.phase_err),
            percent(c.chaff_fraction),
            ratio(1.0 + c.traffic_overhead),
            ratio(1.0 + c.latency_overhead),
        ]);
    }
    if let Ok(path) = std::env::var("MGPU_LEAKAGE_CSV") {
        if !path.is_empty() {
            match std::fs::write(&path, t.to_csv()) {
                Ok(()) => eprintln!("wrote {path}"),
                Err(err) => eprintln!("failed to write {path}: {err}"),
            }
        }
    }
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::OnceLock;

    /// The Bench-mode sweep is the expensive fixture every assertion
    /// shares; run it once.
    fn bench_sweep() -> &'static LeakageSummary {
        static SWEEP: OnceLock<LeakageSummary> = OnceLock::new();
        SWEEP.get_or_init(|| sweep(Mode::Bench))
    }

    #[test]
    fn undefended_ctrl_channel_identifies_the_scheme() {
        let s = bench_sweep();
        let none = s.cell("none").expect("undefended cell");
        assert!(
            none.acc_ctrl > 0.8,
            "undefended ctrl-channel accuracy should be far above chance \
             ({:.3}), got {:.3}",
            s.chance(),
            none.acc_ctrl
        );
        assert_eq!(none.chaff_fraction, 0.0, "no chaff without the defense");
        assert_eq!(none.traffic_overhead, 0.0);
        assert_eq!(none.latency_overhead, 0.0);
    }

    #[test]
    fn constant_rate_shaping_flattens_the_ctrl_channel_to_chance() {
        let s = bench_sweep();
        let shaped = s.cell("constant-rate").expect("shaped cell");
        assert!(
            shaped.acc_ctrl <= s.chance() + 1e-9,
            "shaped ctrl channel must classify at chance ({:.3}), got {:.3}",
            s.chance(),
            shaped.acc_ctrl
        );
        assert!(
            shaped.chaff_fraction > 0.0,
            "shaping pads the channel with chaff"
        );
        assert!(
            shaped.traffic_overhead > 0.0,
            "the envelope costs measurable traffic"
        );
    }

    #[test]
    fn close_jitter_spreads_the_flush_phase() {
        let s = bench_sweep();
        let none = s.cell("none").expect("undefended cell");
        let jittered = s.cell("jitter").expect("jittered cell");
        let (none_lock, jit_lock) = (
            none.phase_lock.expect("phase cells produce flush closes"),
            jittered
                .phase_lock
                .expect("phase cells produce flush closes"),
        );
        assert!(
            none_lock > 0.9,
            "burst-periodic victim closes at one clock phase, got lock {none_lock:.3}"
        );
        assert!(
            jit_lock < 0.5,
            "full-period jitter must spread the close phase, got lock {jit_lock:.3}"
        );
        // Jitter leaves the byte counts alone: no chaff, no envelope.
        assert_eq!(jittered.chaff_fraction, 0.0);
    }

    #[test]
    fn frontier_table_covers_every_variant() {
        let tables = {
            // Reuse the cached sweep via the public path: leakage() re-runs
            // the sweep, so only check shape in Bench mode here.
            let s = bench_sweep();
            assert_eq!(s.cells.len(), 4);
            assert_eq!(s.classes, 3);
            assert_eq!(s.test_runs, 9);
            s
        };
        let order: Vec<&str> = tables.cells.iter().map(|c| c.defense.as_str()).collect();
        assert_eq!(order, ["none", "jitter", "constant-rate", "both"]);
    }
}
