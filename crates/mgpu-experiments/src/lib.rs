//! Reproduction harness: one experiment per table/figure of the paper's
//! motivation and evaluation sections.
//!
//! Every experiment is pure (deterministic seeds) and returns
//! [`report::Table`]s that render as aligned text or CSV. The `repro`
//! binary runs any subset:
//!
//! ```text
//! cargo run -p mgpu-experiments --bin repro --release -- fig21 fig23
//! cargo run -p mgpu-experiments --bin repro --release -- all
//! ```
//!
//! See `EXPERIMENTS.md` at the workspace root for the paper-vs-measured
//! record produced from these runs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod attack;
pub mod common;
pub mod evaluation;
pub mod leakage;
pub mod motivation;
pub mod report;
pub mod serving;
pub mod timeline;
pub mod topology;

pub use common::Mode;
pub use report::Table;

/// A runnable experiment bound to a paper artifact.
pub struct Experiment {
    /// Short id (`table1`, `fig08`, …) used on the command line.
    pub id: &'static str,
    /// What the paper artifact shows.
    pub title: &'static str,
    /// Produces the result tables.
    pub run: fn(Mode) -> Vec<Table>,
}

impl core::fmt::Debug for Experiment {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("Experiment")
            .field("id", &self.id)
            .field("title", &self.title)
            .finish_non_exhaustive()
    }
}

/// The complete registry, in paper order.
#[must_use]
pub fn registry() -> Vec<Experiment> {
    vec![
        Experiment {
            id: "table1",
            title: "Private OTP storage overhead",
            run: motivation::table1,
        },
        Experiment {
            id: "fig08",
            title: "Private vs OTP buffer entries",
            run: motivation::fig08,
        },
        Experiment {
            id: "fig09",
            title: "Prior OTP buffer management schemes",
            run: motivation::fig09,
        },
        Experiment {
            id: "fig10",
            title: "OTP latency-hiding distribution (prior schemes)",
            run: motivation::fig10,
        },
        Experiment {
            id: "fig11",
            title: "Secure communication vs metadata traffic",
            run: motivation::fig11,
        },
        Experiment {
            id: "fig12",
            title: "Traffic increase from security metadata",
            run: motivation::fig12,
        },
        Experiment {
            id: "fig13",
            title: "Send/recv mix over time (mm)",
            run: motivation::fig13,
        },
        Experiment {
            id: "fig14",
            title: "Receive-source mix over time (mm)",
            run: motivation::fig14,
        },
        Experiment {
            id: "fig15",
            title: "16-block accumulation intervals",
            run: |m| motivation::burstiness(m, 16),
        },
        Experiment {
            id: "fig16",
            title: "32-block accumulation intervals",
            run: |m| motivation::burstiness(m, 32),
        },
        Experiment {
            id: "fig21",
            title: "Main result: execution times with 4 GPUs",
            run: evaluation::fig21,
        },
        Experiment {
            id: "fig22",
            title: "OTP distribution: Private vs Cached vs Ours",
            run: evaluation::fig22,
        },
        Experiment {
            id: "fig23",
            title: "Communication traffic: Private vs Cached vs Ours",
            run: evaluation::fig23,
        },
        Experiment {
            id: "fig24",
            title: "Execution times with 8 GPUs",
            run: |m| evaluation::scale(m, 8),
        },
        Experiment {
            id: "fig25",
            title: "Execution times with 16 GPUs",
            run: |m| evaluation::scale(m, 16),
        },
        Experiment {
            id: "fig26",
            title: "AES-GCM latency sensitivity",
            run: evaluation::fig26,
        },
        Experiment {
            id: "table3",
            title: "Simulated system configuration",
            run: evaluation::table3,
        },
        Experiment {
            id: "table4",
            title: "Evaluated benchmarks",
            run: evaluation::table4,
        },
        Experiment {
            id: "ablation-batch",
            title: "Ablation: batch-size sweep",
            run: evaluation::ablation_batch_size,
        },
        Experiment {
            id: "ablation-interval",
            title: "Ablation: Dynamic interval sweep",
            run: evaluation::ablation_interval,
        },
        Experiment {
            id: "attack_campaign",
            title: "Adversary campaign: injection-rate sweep vs detection",
            run: attack::attack_campaign,
        },
        Experiment {
            id: "topology_scaling",
            title: "Fabric shapes: per-hop metadata amplification sweep",
            run: topology::topology_scaling,
        },
        Experiment {
            id: "ring8_smoke",
            title: "8-GPU ring compare_schemes smoke",
            run: topology::ring8_smoke,
        },
        Experiment {
            id: "timeline",
            title: "Interval-resolved dynamic-allocation timeline",
            run: timeline::timeline,
        },
        Experiment {
            id: "serving",
            title: "Serving: open-loop tail latency under SLOs",
            run: serving::serving,
        },
        Experiment {
            id: "leakage",
            title: "Leakage: passive observer vs traffic-shape defenses",
            run: leakage::leakage,
        },
    ]
}

/// Looks up an experiment by id.
#[must_use]
pub fn find(id: &str) -> Option<Experiment> {
    registry().into_iter().find(|e| e.id == id)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_ids_are_unique() {
        let mut ids: Vec<&str> = registry().iter().map(|e| e.id).collect();
        let n = ids.len();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), n);
        assert!(n >= 19);
    }

    #[test]
    fn find_known_and_unknown() {
        assert!(find("fig21").is_some());
        assert!(find("fig99").is_none());
    }

    #[test]
    fn every_experiment_runs_in_quick_mode_table1_table4() {
        // The cheap, purely-analytic experiments run end to end here;
        // the simulation-backed ones are covered by their module tests.
        for id in ["table1", "table4"] {
            let exp = find(id).unwrap();
            let tables = (exp.run)(Mode::Quick);
            assert!(!tables.is_empty(), "{id}");
            assert!(!tables[0].is_empty(), "{id}");
        }
    }
}
