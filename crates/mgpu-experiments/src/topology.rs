//! Topology scaling: how the fabric shape amplifies security-metadata
//! traffic.
//!
//! The paper evaluates a fully-connected system, where every block and
//! every piece of metadata crosses exactly one link. Real NVLink fabrics
//! are rings and switch hierarchies: a message crosses several hops, and
//! *every byte — payload and metadata — is charged once per hop*. This
//! experiment sweeps system size × fabric shape × security scheme and
//! reports the per-hop amplification, showing that the paper's Batching
//! scheme matters *more* on routed fabrics: the fewer metadata bytes it
//! puts on the wire, the less there is to amplify.

use crate::common::{self, Mode};
use crate::report::{ratio, Table};
use mgpu_system::runner::{compare_schemes, compare_schemes_with, configs, SchemeResult};
use mgpu_types::{SystemConfig, TopologyKind};
use mgpu_workloads::Benchmark;

/// Fabric shapes swept: the paper's fully-connected reference plus the
/// two routed shapes.
const SHAPES: [TopologyKind; 3] = [
    TopologyKind::FullyConnected,
    TopologyKind::Ring,
    TopologyKind::Switch { radix: 4 },
];

/// System sizes swept (the paper's 4-GPU system plus its scale-out
/// points, Figs. 24–25).
const GPU_COUNTS: [u16; 3] = [4, 8, 16];

/// Scale-out sizes past the paper's sweep. These run on the sharded
/// engine and sweep only [`LARGE_SHAPES`]: the ring's O(gpus) hop count
/// would dominate runtime above 16 GPUs without adding signal, while the
/// switch hierarchy (≤ 3 switch hops at any size) is the shape real
/// scale-out fabrics take.
const LARGE_GPU_COUNTS: [u16; 3] = [32, 64, 128];

/// Shapes swept at the [`LARGE_GPU_COUNTS`] scales: the switch hierarchy
/// under test plus the fully-connected amplification reference.
const LARGE_SHAPES: [TopologyKind; 2] = [
    TopologyKind::FullyConnected,
    TopologyKind::Switch { radix: 4 },
];

/// Shards used for the scale-out cells. Four is enough to exercise the
/// window-synchronized engine (cross-shard mailboxes, lineage-stamp
/// merges) while staying within the oversubscription clamp on small
/// hosts; results are bit-identical at any shard count, so this only
/// affects wall-clock.
const LARGE_SHARDS: u16 = 4;

/// Remote requests per GPU for one sweep cell: the mode's budget at the
/// paper scales, scaled down above 16 GPUs so total injected work per
/// cell stays roughly constant (`gpus × requests ≈ 16 × budget`).
fn requests_for(gpus: u16, mode: Mode) -> usize {
    let budget = mode.requests();
    if gpus <= 16 {
        budget
    } else {
        (budget * 16 / usize::from(gpus)).max(8)
    }
}

/// The paper-parameter base config for `gpus` GPUs.
fn base_for(gpus: u16) -> SystemConfig {
    match gpus {
        4 => SystemConfig::paper_4gpu(),
        8 => SystemConfig::paper_8gpu(),
        16 => SystemConfig::paper_16gpu(),
        _ => {
            let mut cfg = SystemConfig::paper_4gpu();
            cfg.gpu_count = gpus;
            cfg
        }
    }
}

/// The schemes compared: the Private baseline, Dynamic, and the full
/// Dynamic + Batching proposal.
fn scheme_set(base: &SystemConfig) -> Vec<(String, SystemConfig)> {
    vec![
        ("private".into(), configs::private(base, 4)),
        ("dynamic".into(), configs::dynamic(base, 4)),
        ("batching".into(), configs::batching(base, 4)),
    ]
}

/// Benchmarks swept: one transpose-heavy and one sparse pattern (reduced
/// under `Bench`).
fn benches(mode: Mode) -> &'static [Benchmark] {
    match mode {
        Mode::Full | Mode::Quick => &[Benchmark::MatrixTranspose, Benchmark::Spmv],
        Mode::Bench => &[Benchmark::MatrixTranspose],
    }
}

/// One sweep cell: scheme results for `gpus` GPUs on `kind`, summed over
/// the mode's benchmarks. The scale-out sizes run on the sharded engine
/// ([`LARGE_SHARDS`]); the paper scales keep the process-wide default
/// (`MGPU_SHARDS`, single-threaded unless overridden).
fn sweep_cell(gpus: u16, kind: TopologyKind, mode: Mode) -> Vec<(String, u64, u64, u64)> {
    let base = base_for(gpus).with_topology(kind);
    let schemes = scheme_set(&base);
    let shards = if gpus > 16 {
        LARGE_SHARDS
    } else {
        mgpu_system::default_shards()
    };
    let mut out: Vec<(String, u64, u64, u64)> = schemes
        .iter()
        .map(|(label, _)| (label.clone(), 0, 0, 0))
        .collect();
    for &bench in benches(mode) {
        let results = compare_schemes_with(
            bench,
            &schemes,
            requests_for(gpus, mode),
            common::SEED,
            shards,
        );
        for (slot, r) in out.iter_mut().zip(&results) {
            slot.1 += r.report.total_cycles.as_u64();
            slot.2 += r.report.traffic.total().as_u64();
            slot.3 += r.report.traffic.metadata().as_u64();
        }
    }
    out
}

/// The `topology_scaling` experiment: GPUs × fabric shape × scheme, with
/// metadata bytes and their amplification over the fully-connected
/// reference of the same size and scheme.
#[must_use]
pub fn topology_scaling(mode: Mode) -> Vec<Table> {
    let mut table = Table::new(
        "Topology scaling: per-hop metadata amplification",
        &[
            "gpus",
            "topology",
            "scheme",
            "cycles",
            "total-bytes",
            "metadata-bytes",
            "metadata-amp",
        ],
    );
    for &gpus in &GPU_COUNTS {
        push_scale(&mut table, gpus, &SHAPES, mode);
    }
    for &gpus in &LARGE_GPU_COUNTS {
        push_scale(&mut table, gpus, &LARGE_SHAPES, mode);
    }
    vec![table]
}

/// Appends one system size's rows to the sweep table: every shape in
/// `shapes`, with metadata amplification computed against the
/// fully-connected reference of the same size and scheme.
fn push_scale(table: &mut Table, gpus: u16, shapes: &[TopologyKind], mode: Mode) {
    // Fully-connected first: the amplification reference.
    let reference = sweep_cell(gpus, TopologyKind::FullyConnected, mode);
    for &kind in shapes {
        let cells = if kind == TopologyKind::FullyConnected {
            reference.clone()
        } else {
            sweep_cell(gpus, kind, mode)
        };
        for ((label, cycles, total, metadata), (_, _, _, ref_metadata)) in
            cells.iter().zip(&reference)
        {
            let amp = if *ref_metadata > 0 {
                *metadata as f64 / *ref_metadata as f64
            } else {
                1.0
            };
            table.add_row(vec![
                gpus.to_string(),
                kind.to_string(),
                label.clone(),
                cycles.to_string(),
                total.to_string(),
                metadata.to_string(),
                ratio(amp),
            ]);
        }
    }
}

/// The `ring8_smoke` experiment: a fast end-to-end `compare_schemes` run
/// on an 8-GPU ring — the CI check that the routed-fabric path stays
/// alive (the fully-connected path is covered by the golden parity
/// test).
#[must_use]
pub fn ring8_smoke(mode: Mode) -> Vec<Table> {
    let base = SystemConfig::paper_8gpu().with_topology(TopologyKind::Ring);
    let schemes = scheme_set(&base);
    let results = compare_schemes(
        Benchmark::MatrixTranspose,
        &schemes,
        mode.requests(),
        common::SEED,
    );
    let mut table = Table::new(
        "8-GPU ring smoke: compare_schemes",
        &["scheme", "norm-time", "traffic-ratio", "metadata-bytes"],
    );
    for SchemeResult {
        label,
        normalized_time,
        traffic_ratio,
        report,
        ..
    } in &results
    {
        assert!(
            report.traffic.metadata().as_u64() > 0,
            "{label}: secure scheme produced no metadata on the ring"
        );
        table.add_row(vec![
            label.clone(),
            ratio(*normalized_time),
            ratio(*traffic_ratio),
            report.traffic.metadata().to_string(),
        ]);
    }
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Metadata bytes per scheme for one (gpus, kind) point.
    fn metadata_of(cells: &[(String, u64, u64, u64)], scheme: &str) -> u64 {
        cells
            .iter()
            .find(|(label, ..)| label == scheme)
            .unwrap_or_else(|| panic!("scheme {scheme} in sweep"))
            .3
    }

    #[test]
    fn routed_fabrics_amplify_private_metadata() {
        for gpus in [4, 8] {
            let fc = sweep_cell(gpus, TopologyKind::FullyConnected, Mode::Bench);
            for kind in [TopologyKind::Ring, TopologyKind::Switch { radix: 4 }] {
                let routed = sweep_cell(gpus, kind, Mode::Bench);
                assert!(
                    metadata_of(&routed, "private") > metadata_of(&fc, "private"),
                    "{gpus} GPUs / {kind}: routed Private metadata not above fully-connected"
                );
            }
        }
    }

    #[test]
    fn batching_narrows_the_amplification_gap() {
        // The absolute metadata cost a routed fabric adds on top of
        // fully-connected must shrink when batching collapses per-block
        // MACs and ACKs into per-batch ones.
        for kind in [TopologyKind::Ring, TopologyKind::Switch { radix: 4 }] {
            let fc = sweep_cell(8, TopologyKind::FullyConnected, Mode::Bench);
            let routed = sweep_cell(8, kind, Mode::Bench);
            let private_gap = metadata_of(&routed, "private") - metadata_of(&fc, "private");
            let batching_gap = metadata_of(&routed, "batching") - metadata_of(&fc, "batching");
            assert!(
                batching_gap < private_gap,
                "{kind}: batching gap {batching_gap} not below private gap {private_gap}"
            );
        }
    }

    #[test]
    fn table_covers_the_full_sweep() {
        let tables = topology_scaling(Mode::Bench);
        assert_eq!(tables.len(), 1);
        // Paper scales: 3 GPU counts x 3 shapes x 3 schemes. Scale-out:
        // 3 GPU counts x 2 shapes x 3 schemes.
        assert_eq!(tables[0].len(), 27 + 18);
        let csv = tables[0].to_csv();
        assert!(csv.contains("ring"));
        assert!(csv.contains("switch-r4"));
        assert!(csv.contains("fully-connected"));
        // Every scale-out size reports a sharded switch cell per scheme.
        for gpus in LARGE_GPU_COUNTS {
            for scheme in ["private", "dynamic", "batching"] {
                assert!(
                    csv.contains(&format!("{gpus},switch-r4,{scheme},")),
                    "missing {gpus}-GPU switch row for {scheme}"
                );
            }
        }
    }

    #[test]
    fn scale_out_requests_shrink_with_size() {
        assert_eq!(requests_for(16, Mode::Bench), Mode::Bench.requests());
        assert_eq!(requests_for(32, Mode::Full), 500);
        assert_eq!(requests_for(128, Mode::Full), 125);
        // The floor keeps tiny modes from starving the largest fabrics.
        assert!(requests_for(128, Mode::Bench) >= 8);
    }

    #[test]
    fn scale_out_switch_cell_amplifies_metadata() {
        // The 32-GPU sharded switch cell must complete and show the same
        // routed-fabric amplification the paper scales show.
        let fc = sweep_cell(32, TopologyKind::FullyConnected, Mode::Bench);
        let sw = sweep_cell(32, TopologyKind::Switch { radix: 4 }, Mode::Bench);
        assert!(metadata_of(&sw, "private") > metadata_of(&fc, "private"));
        assert!(metadata_of(&sw, "batching") > 0);
    }

    #[test]
    fn ring_smoke_runs_and_reports_all_schemes() {
        let tables = ring8_smoke(Mode::Bench);
        assert_eq!(tables.len(), 1);
        assert_eq!(tables[0].len(), 3);
    }
}
