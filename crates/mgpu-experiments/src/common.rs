//! Shared experiment plumbing: run sizing, suite iteration, the
//! deterministic simulation-cell cache, and the parallel cell runner.
//!
//! Every experiment decomposes into *cells* — one `(config, benchmark,
//! request count)` simulation each. Cells are pure functions of their key
//! (the simulation is seeded), so the harness memoizes them in a
//! process-wide cache and fans uncached cells across worker threads.
//! Experiments share many cells (every figure re-runs the unsecure
//! baselines, and the Private/Cached/Ours triple appears in five figures),
//! so the cache removes most of `repro all`'s work; the fan-out uses
//! whatever cores remain. Both layers are observable and defeatable:
//!
//! - `MGPU_WORKERS=<n>` caps the worker threads (default: all cores).
//! - `MGPU_CELL_CACHE=0` disables memoization (honest single-run timing).
//!
//! Results are bit-identical whichever path computes them — the cache
//! stores exactly what a direct run returns, and workers never share
//! mutable simulation state (asserted in tests).
//!
//! # Thread-count environment variables
//!
//! - `MGPU_WORKERS=<n>` caps the cell-level worker threads ([`workers`]).
//! - `MGPU_SHARDS=<n>` sets the shard (thread) count *inside each
//!   simulation* ([`shards`]; see `mgpu_system::sharded`). Results are
//!   bit-identical for any value — sharding only changes wall-clock time.
//!
//! The two multiply: total thread demand is `workers × shards`. When
//! neither is explicit the default stays at one thread per core (cell
//! workers shrink to `cores / shards`). Explicit values are honored, but
//! an oversubscribed product warns once to stderr. Invalid values (a
//! non-integer, or zero) also warn once and fall back to the default —
//! they used to be silently ignored, which hid typos like
//! `MGPU_WORKERS=all`.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};

use mgpu_system::runner::configs;
use mgpu_system::{RunReport, Simulation};
use mgpu_types::{OtpSchemeKind, SystemConfig};
use mgpu_workloads::Benchmark;

/// Deterministic seed used by every experiment.
pub const SEED: u64 = 42;

/// How much work an experiment run does.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Full reproduction quality (used by the `repro` binary).
    Full,
    /// Reduced size for benchmarking/CI smoke runs.
    Quick,
    /// Minimal size for Criterion timing loops.
    Bench,
}

impl Mode {
    /// Remote requests per GPU for this mode.
    #[must_use]
    pub fn requests(self) -> usize {
        match self {
            Mode::Full => 1_000,
            Mode::Quick => 250,
            Mode::Bench => 100,
        }
    }

    /// The benchmark suite evaluated in this mode.
    #[must_use]
    pub fn suite(self) -> &'static [Benchmark] {
        match self {
            Mode::Full => &Benchmark::ALL,
            Mode::Quick => &[
                Benchmark::MatrixTranspose,
                Benchmark::Spmv,
                Benchmark::MatrixMultiplication,
                Benchmark::Fir,
            ],
            Mode::Bench => &[Benchmark::MatrixTranspose, Benchmark::Fir],
        }
    }
}

/// One unit of simulation work: a configuration evaluated on a benchmark.
pub type Cell = (SystemConfig, Benchmark);

fn cell_cache() -> &'static Mutex<HashMap<String, RunReport>> {
    static CACHE: OnceLock<Mutex<HashMap<String, RunReport>>> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

/// The memo key: the full config state plus benchmark and run size. The
/// derived `Debug` form is deterministic and covers every field that can
/// influence a run (the seed is the global [`SEED`]).
fn cell_key(cfg: &SystemConfig, bench: Benchmark, requests: usize) -> String {
    format!("{requests}|{bench:?}|{cfg:?}")
}

fn cache_enabled() -> bool {
    std::env::var("MGPU_CELL_CACHE").map_or(true, |v| v != "0")
}

/// Cells served from the cache since process start.
static CACHE_HITS: AtomicU64 = AtomicU64::new(0);
/// Cells actually simulated since process start (including runs with the
/// cache disabled).
static CACHE_MISSES: AtomicU64 = AtomicU64::new(0);

/// Process-wide `(cache_hits, cache_misses)` of the cell cache. The
/// `repro` binary diffs these around each experiment so `BENCH_repro.json`
/// can tell warm-cache timings from real work.
#[must_use]
pub fn cache_counters() -> (u64, u64) {
    (
        CACHE_HITS.load(Ordering::Relaxed),
        CACHE_MISSES.load(Ordering::Relaxed),
    )
}

/// Strict positive-integer parse for thread-count overrides.
fn parse_positive(raw: &str) -> Option<usize> {
    raw.trim().parse().ok().filter(|&n| n > 0)
}

/// Reads a thread-count override from the environment, warning once (per
/// variable) when the value is set but unusable instead of silently
/// falling back.
fn env_threads(var: &str, warned: &AtomicBool) -> Option<usize> {
    let raw = std::env::var(var).ok()?;
    let parsed = parse_positive(&raw);
    if parsed.is_none() && !warned.swap(true, Ordering::Relaxed) {
        eprintln!("warning: ignoring {var}={raw:?}: expected a positive integer");
    }
    parsed
}

/// Resolves the cell-worker count against the core budget shared with
/// per-simulation shards: an explicit request is honored as-is (the
/// caller may warn), a defaulted one shrinks to `cores / shards` so the
/// product stays within the machine.
fn budget_workers(requested: Option<usize>, shards: usize, cores: usize) -> usize {
    match requested {
        Some(n) => n,
        None => (cores / shards.max(1)).max(1),
    }
}

/// Clamps an explicit `MGPU_SHARDS` request to what the host can run:
/// shards are worker threads inside one simulation, so anything beyond
/// the core count gains nothing, and values beyond `u16::MAX` used to
/// wrap to 65535 silently. The core count itself is capped at `u16::MAX`
/// so the result always fits the engine's shard type.
fn clamp_shards(requested: usize, cores: usize) -> u16 {
    let cap = cores.clamp(1, usize::from(u16::MAX));
    u16::try_from(requested.min(cap)).expect("cap fits u16")
}

/// Shard (thread) count used *inside each simulation*: `MGPU_SHARDS` if
/// set (validated like `MGPU_WORKERS`, and clamped to the host's core
/// count with a one-time warning), otherwise 1. Resolved once per
/// process and installed as the engine-wide default
/// (`mgpu_system::set_default_shards`), so every cell — cached or not —
/// runs with the same shard count.
#[must_use]
pub fn shards() -> u16 {
    static RESOLVED: OnceLock<u16> = OnceLock::new();
    *RESOLVED.get_or_init(|| {
        static WARNED: AtomicBool = AtomicBool::new(false);
        let s = env_threads("MGPU_SHARDS", &WARNED).map_or(1, |n| {
            let cores = std::thread::available_parallelism().map_or(1, |c| c.get());
            let clamped = clamp_shards(n, cores);
            if usize::from(clamped) != n && !WARNED.swap(true, Ordering::Relaxed) {
                eprintln!(
                    "warning: clamping MGPU_SHARDS={n} to {clamped} (host has {cores} core(s))"
                );
            }
            clamped
        });
        mgpu_system::set_default_shards(s);
        s
    })
}

/// Worker threads used by [`run_many`]: `MGPU_WORKERS` if set, otherwise
/// the machine's available parallelism divided by [`shards`] (each cell
/// may itself run that many threads). An explicit `MGPU_WORKERS` is
/// honored even when `workers × shards` oversubscribes the machine, but
/// warns once.
#[must_use]
pub fn workers() -> usize {
    static WARNED: AtomicBool = AtomicBool::new(false);
    static OVERSUB_WARNED: AtomicBool = AtomicBool::new(false);
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let shards = usize::from(shards());
    let requested = env_threads("MGPU_WORKERS", &WARNED);
    let workers = budget_workers(requested, shards, cores);
    if workers * shards > cores && !OVERSUB_WARNED.swap(true, Ordering::Relaxed) {
        eprintln!(
            "warning: MGPU_WORKERS ({workers}) x MGPU_SHARDS ({shards}) = {} threads \
             oversubscribes {cores} core(s)",
            workers * shards
        );
    }
    workers
}

/// Empties the simulation-cell cache (test isolation and honest timing).
pub fn clear_cell_cache() {
    cell_cache().lock().expect("cell cache poisoned").clear();
}

fn simulate(cfg: &SystemConfig, bench: Benchmark, requests: usize) -> RunReport {
    // First use installs the MGPU_SHARDS default into the engine.
    let _ = shards();
    Simulation::new(cfg.clone(), bench, SEED).run_for_requests(requests)
}

/// Runs one configuration on one benchmark, consulting the cell cache.
#[must_use]
pub fn run(cfg: &SystemConfig, bench: Benchmark, mode: Mode) -> RunReport {
    let requests = mode.requests();
    if !cache_enabled() {
        CACHE_MISSES.fetch_add(1, Ordering::Relaxed);
        return simulate(cfg, bench, requests);
    }
    let key = cell_key(cfg, bench, requests);
    if let Some(hit) = cell_cache().lock().expect("cell cache poisoned").get(&key) {
        CACHE_HITS.fetch_add(1, Ordering::Relaxed);
        return hit.clone();
    }
    CACHE_MISSES.fetch_add(1, Ordering::Relaxed);
    let report = simulate(cfg, bench, requests);
    cell_cache()
        .lock()
        .expect("cell cache poisoned")
        .insert(key, report.clone());
    report
}

/// Runs every cell, fanning uncached work across [`workers`] threads, and
/// returns the reports in input order.
///
/// Each cell is an independent deterministic simulation, so the output is
/// bit-identical to running the cells sequentially — parallelism only
/// changes wall-clock time.
#[must_use]
pub fn run_many(cells: &[Cell], mode: Mode) -> Vec<RunReport> {
    let n = cells.len();
    let worker_count = workers().min(n);
    if worker_count <= 1 {
        return cells
            .iter()
            .map(|(cfg, bench)| run(cfg, *bench, mode))
            .collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<RunReport>>> = (0..n).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..worker_count {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let (cfg, bench) = &cells[i];
                let report = run(cfg, *bench, mode);
                *slots[i].lock().expect("result slot poisoned") = Some(report);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("every cell index is visited")
        })
        .collect()
}

/// Warms the cell cache for `cells` in parallel; later `run` calls for the
/// same cells are lookups. A no-op when the cache is disabled.
pub fn prefetch(cells: &[Cell], mode: Mode) {
    if cache_enabled() && !cells.is_empty() {
        let _ = run_many(cells, mode);
    }
}

/// The unsecure twin of `cfg`: same system, security scheme off.
#[must_use]
pub fn baseline_of(cfg: &SystemConfig) -> SystemConfig {
    let mut base = cfg.clone();
    base.security.scheme = OtpSchemeKind::Unsecure;
    base.security.batching.enabled = false;
    base
}

/// Runs the unsecure twin of `cfg` on `bench`.
#[must_use]
pub fn run_baseline(cfg: &SystemConfig, bench: Benchmark, mode: Mode) -> RunReport {
    run(&baseline_of(cfg), bench, mode)
}

/// Builds the prefetch cell list for a normalized-table experiment: per
/// benchmark, the baseline of `base` plus every listed configuration.
#[must_use]
pub fn table_cells(base: &SystemConfig, cfgs: &[(String, SystemConfig)], mode: Mode) -> Vec<Cell> {
    let baseline = baseline_of(base);
    let mut cells = Vec::with_capacity(mode.suite().len() * (cfgs.len() + 1));
    for &bench in mode.suite() {
        cells.push((baseline.clone(), bench));
        for (_, cfg) in cfgs {
            cells.push((cfg.clone(), bench));
        }
    }
    cells
}

/// The paper's standard 4-GPU configuration set for the main comparison
/// (Fig. 21): Private 4×/16×, Cached 4×, Dynamic 4×, Dynamic+Batching 4×.
#[must_use]
pub fn fig21_configs(base: &SystemConfig) -> Vec<(String, SystemConfig)> {
    vec![
        ("private-4x".into(), configs::private(base, 4)),
        ("private-16x".into(), configs::private(base, 16)),
        ("cached-4x".into(), configs::cached(base, 4)),
        ("dynamic-4x".into(), configs::dynamic(base, 4)),
        ("batching-4x".into(), configs::batching(base, 4)),
    ]
}

/// The Private/Cached/Ours triple used by the traffic and scaling figures.
#[must_use]
pub fn ours_triple(base: &SystemConfig) -> Vec<(String, SystemConfig)> {
    vec![
        ("private-4x".into(), configs::private(base, 4)),
        ("cached-4x".into(), configs::cached(base, 4)),
        ("ours".into(), configs::batching(base, 4)),
    ]
}

/// Geometric mean helper re-exported for experiment summaries.
#[must_use]
pub fn geomean(xs: &[f64]) -> f64 {
    mgpu_sim::stats::geometric_mean(xs).unwrap_or(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_mode_is_smaller() {
        assert!(Mode::Quick.requests() < Mode::Full.requests());
        assert!(Mode::Quick.suite().len() < Mode::Full.suite().len());
        assert_eq!(Mode::Full.suite().len(), 17);
    }

    #[test]
    fn baseline_is_unsecure() {
        let cfg = configs::private(&SystemConfig::paper_4gpu(), 4);
        let base = run_baseline(&cfg, Benchmark::Fir, Mode::Quick);
        assert_eq!(base.scheme, OtpSchemeKind::Unsecure);
        assert_eq!(base.traffic.metadata().as_u64(), 0);
    }

    #[test]
    fn config_sets_have_expected_labels() {
        let base = SystemConfig::paper_4gpu();
        let labels: Vec<String> = fig21_configs(&base).into_iter().map(|(l, _)| l).collect();
        assert_eq!(
            labels,
            [
                "private-4x",
                "private-16x",
                "cached-4x",
                "dynamic-4x",
                "batching-4x"
            ]
        );
        assert_eq!(ours_triple(&base).len(), 3);
    }

    #[test]
    fn geomean_of_unit_is_unit() {
        assert!((geomean(&[1.0, 1.0]) - 1.0).abs() < 1e-12);
        assert_eq!(geomean(&[]), 0.0);
    }

    /// `RunReport` has no `PartialEq`; the derived `Debug` covers every
    /// field, so string equality is bit-for-bit report equality.
    fn fingerprint(r: &RunReport) -> String {
        format!("{r:?}")
    }

    #[test]
    fn parallel_run_many_is_bit_identical_to_sequential() {
        let base = SystemConfig::paper_4gpu();
        let mut cells: Vec<Cell> = Vec::new();
        for bench in [Benchmark::Fir, Benchmark::MatrixTranspose] {
            cells.push((baseline_of(&base), bench));
            cells.push((configs::private(&base, 4), bench));
            cells.push((configs::batching(&base, 4), bench));
        }
        // Ground truth: fresh sequential simulations, no cache involved.
        let sequential: Vec<String> = cells
            .iter()
            .map(|(cfg, bench)| fingerprint(&simulate(cfg, *bench, Mode::Bench.requests())))
            .collect();
        let parallel: Vec<String> = run_many(&cells, Mode::Bench)
            .iter()
            .map(fingerprint)
            .collect();
        assert_eq!(sequential, parallel);
    }

    #[test]
    fn cached_rerun_matches_first_run() {
        let cfg = configs::cached(&SystemConfig::paper_4gpu(), 4);
        let first = run(&cfg, Benchmark::Spmv, Mode::Bench);
        let second = run(&cfg, Benchmark::Spmv, Mode::Bench);
        assert_eq!(fingerprint(&first), fingerprint(&second));
        // And both equal an uncached simulation.
        assert_eq!(
            fingerprint(&first),
            fingerprint(&simulate(&cfg, Benchmark::Spmv, Mode::Bench.requests()))
        );
    }

    #[test]
    fn cell_keys_distinguish_configs_benchmarks_and_sizes() {
        let base = SystemConfig::paper_4gpu();
        let a = cell_key(&base, Benchmark::Fir, 100);
        assert_ne!(a, cell_key(&base, Benchmark::Fir, 250));
        assert_ne!(a, cell_key(&base, Benchmark::Spmv, 100));
        assert_ne!(a, cell_key(&baseline_of(&base), Benchmark::Fir, 100));
        assert_ne!(
            a,
            cell_key(&configs::private(&base, 16), Benchmark::Fir, 100)
        );
        assert_eq!(a, cell_key(&base.clone(), Benchmark::Fir, 100));
    }

    #[test]
    fn table_cells_covers_baseline_and_all_configs() {
        let base = SystemConfig::paper_4gpu();
        let cfgs = ours_triple(&base);
        let cells = table_cells(&base, &cfgs, Mode::Bench);
        assert_eq!(cells.len(), Mode::Bench.suite().len() * (cfgs.len() + 1));
        assert_eq!(cells[0].0.security.scheme, OtpSchemeKind::Unsecure);
    }

    #[test]
    fn workers_is_positive() {
        assert!(workers() >= 1);
    }

    #[test]
    fn thread_overrides_parse_strictly() {
        assert_eq!(parse_positive("8"), Some(8));
        assert_eq!(parse_positive(" 4 "), Some(4));
        assert_eq!(parse_positive("0"), None, "zero threads is invalid");
        assert_eq!(parse_positive("all"), None);
        assert_eq!(parse_positive("-2"), None);
        assert_eq!(parse_positive(""), None);
    }

    #[test]
    fn oversized_shard_requests_clamp_to_host_cores() {
        // Used to wrap silently to u16::MAX; now clamps to the cores the
        // host actually has.
        assert_eq!(clamp_shards(70_000, 4), 4);
        assert_eq!(clamp_shards(8, 4), 4);
        // Within budget: honored as-is.
        assert_eq!(clamp_shards(2, 8), 2);
        assert_eq!(clamp_shards(1, 1), 1);
        // A pathological core count still fits the engine's u16 shards.
        assert_eq!(clamp_shards(1_000_000, 1_000_000), u16::MAX);
    }

    #[test]
    fn defaulted_workers_share_the_core_budget_with_shards() {
        // No explicit request: the worker count shrinks so that
        // workers x shards stays within the core budget.
        assert_eq!(budget_workers(None, 4, 16), 4);
        assert_eq!(budget_workers(None, 1, 16), 16);
        assert_eq!(budget_workers(None, 32, 16), 1, "never below one worker");
        // Explicit requests are honored (the caller warns instead).
        assert_eq!(budget_workers(Some(12), 4, 16), 12);
    }

    #[test]
    fn cache_counters_advance_on_hit_and_miss() {
        let cfg = configs::dynamic(&SystemConfig::paper_4gpu(), 4);
        // A distinctive benchmark keeps this cell out of other tests' way.
        let (h0, m0) = cache_counters();
        let _ = run(&cfg, Benchmark::Mvt, Mode::Bench);
        let (h1, m1) = cache_counters();
        assert!(h1 + m1 > h0 + m0, "first run must count a hit or a miss");
        let _ = run(&cfg, Benchmark::Mvt, Mode::Bench);
        let (h2, _) = cache_counters();
        if cache_enabled() {
            assert!(h2 > h1, "second identical run must be a cache hit");
        }
    }
}
