//! Shared experiment plumbing: run sizing, suite iteration, and cached
//! baselines.

use mgpu_system::runner::configs;
use mgpu_system::{RunReport, Simulation};
use mgpu_types::{OtpSchemeKind, SystemConfig};
use mgpu_workloads::Benchmark;

/// Deterministic seed used by every experiment.
pub const SEED: u64 = 42;

/// How much work an experiment run does.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Full reproduction quality (used by the `repro` binary).
    Full,
    /// Reduced size for benchmarking/CI smoke runs.
    Quick,
    /// Minimal size for Criterion timing loops.
    Bench,
}

impl Mode {
    /// Remote requests per GPU for this mode.
    #[must_use]
    pub fn requests(self) -> usize {
        match self {
            Mode::Full => 1_000,
            Mode::Quick => 250,
            Mode::Bench => 100,
        }
    }

    /// The benchmark suite evaluated in this mode.
    #[must_use]
    pub fn suite(self) -> &'static [Benchmark] {
        match self {
            Mode::Full => &Benchmark::ALL,
            Mode::Quick => &[
                Benchmark::MatrixTranspose,
                Benchmark::Spmv,
                Benchmark::MatrixMultiplication,
                Benchmark::Fir,
            ],
            Mode::Bench => &[Benchmark::MatrixTranspose, Benchmark::Fir],
        }
    }
}

/// Runs one configuration on one benchmark.
#[must_use]
pub fn run(cfg: &SystemConfig, bench: Benchmark, mode: Mode) -> RunReport {
    Simulation::new(cfg.clone(), bench, SEED).run_for_requests(mode.requests())
}

/// Runs the unsecure twin of `cfg` on `bench`.
#[must_use]
pub fn run_baseline(cfg: &SystemConfig, bench: Benchmark, mode: Mode) -> RunReport {
    let mut base = cfg.clone();
    base.security.scheme = OtpSchemeKind::Unsecure;
    base.security.batching.enabled = false;
    run(&base, bench, mode)
}

/// The paper's standard 4-GPU configuration set for the main comparison
/// (Fig. 21): Private 4×/16×, Cached 4×, Dynamic 4×, Dynamic+Batching 4×.
#[must_use]
pub fn fig21_configs(base: &SystemConfig) -> Vec<(String, SystemConfig)> {
    vec![
        ("private-4x".into(), configs::private(base, 4)),
        ("private-16x".into(), configs::private(base, 16)),
        ("cached-4x".into(), configs::cached(base, 4)),
        ("dynamic-4x".into(), configs::dynamic(base, 4)),
        ("batching-4x".into(), configs::batching(base, 4)),
    ]
}

/// The Private/Cached/Ours triple used by the traffic and scaling figures.
#[must_use]
pub fn ours_triple(base: &SystemConfig) -> Vec<(String, SystemConfig)> {
    vec![
        ("private-4x".into(), configs::private(base, 4)),
        ("cached-4x".into(), configs::cached(base, 4)),
        ("ours".into(), configs::batching(base, 4)),
    ]
}

/// Geometric mean helper re-exported for experiment summaries.
#[must_use]
pub fn geomean(xs: &[f64]) -> f64 {
    mgpu_sim::stats::geometric_mean(xs).unwrap_or(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_mode_is_smaller() {
        assert!(Mode::Quick.requests() < Mode::Full.requests());
        assert!(Mode::Quick.suite().len() < Mode::Full.suite().len());
        assert_eq!(Mode::Full.suite().len(), 17);
    }

    #[test]
    fn baseline_is_unsecure() {
        let cfg = configs::private(&SystemConfig::paper_4gpu(), 4);
        let base = run_baseline(&cfg, Benchmark::Fir, Mode::Quick);
        assert_eq!(base.scheme, OtpSchemeKind::Unsecure);
        assert_eq!(base.traffic.metadata().as_u64(), 0);
    }

    #[test]
    fn config_sets_have_expected_labels() {
        let base = SystemConfig::paper_4gpu();
        let labels: Vec<String> = fig21_configs(&base).into_iter().map(|(l, _)| l).collect();
        assert_eq!(
            labels,
            ["private-4x", "private-16x", "cached-4x", "dynamic-4x", "batching-4x"]
        );
        assert_eq!(ours_triple(&base).len(), 3);
    }

    #[test]
    fn geomean_of_unit_is_unit() {
        assert!((geomean(&[1.0, 1.0]) - 1.0).abs() < 1e-12);
        assert_eq!(geomean(&[]), 0.0);
    }
}
