//! `serving` experiment: open-loop inference-serving traffic with
//! tail-latency SLOs.
//!
//! Unlike the paper's batch kernels (closed-loop compute gaps), serving
//! traffic arrives on an external clock: [`ServingModel`] drives seeded
//! Poisson or bursty MMPP arrivals with a Zipf-skewed destination mix and
//! a per-request deadline, and the engine runs in open-loop pacing so
//! queueing delay lands in the latency distribution instead of shifting
//! arrivals. The sweep crosses offered load × burstiness × scheme and
//! reports p50/p99/p999 total latency plus SLO-violation rates.
//!
//! Two adaptive scheme variants ride on the paper's mechanisms:
//!
//! * `dynamic-load-4x` — load-triggered repartitioning: the OTP pool is
//!   repartitioned when the observed arrival rate shifts (burst onset or
//!   end) instead of on every fixed interval.
//! * `batching-deadline-4x` — deadline-aware batch close: open metadata
//!   batches close early when the estimated time to fill the batch
//!   exceeds the SLO slack, converting full-batch closes on data blocks
//!   (which can defer on a full replay table) into trailer closes.

use crate::common::{Mode, SEED};
use crate::report::{percent, Table};
use mgpu_system::runner::configs;
use mgpu_system::{RunReport, Simulation};
use mgpu_types::{Duration, SystemConfig};
use mgpu_workloads::{ArrivalProcess, Benchmark, ServingModel};

/// GPUs in the serving system (the paper's standard 4-GPU node).
const GPUS: u16 = 4;

/// Zipf skew of each tenant's destination mix.
const ZIPF_S: f64 = 0.9;

/// Per-request SLO budget in cycles (unloaded round trip is ~400 cycles;
/// the budget leaves headroom for queueing but is tight under bursts).
const SLO_BUDGET: u64 = 1_200;

/// Burst intensity of the MMPP cells: on-state arrival rate is 8× the
/// off-state rate at the same time-averaged load.
const BURST_FACTOR: f64 = 8.0;

/// Mean dwell time of each MMPP state, in cycles (several repartition
/// check intervals long, so the load shift is observable).
const MEAN_DWELL: f64 = 2_000.0;

/// One cell of the serving sweep, summarized.
#[derive(Debug, Clone)]
pub struct ServingCell {
    /// Offered-load label (`gap60` = mean inter-arrival gap 60 cycles).
    pub load: String,
    /// Arrival-process label (`poisson` or `bursty`).
    pub arrivals: String,
    /// Scheme label (`private-4x`, `dynamic-load-4x`, ...).
    pub scheme: String,
    /// Median total latency in cycles.
    pub p50: f64,
    /// 99th-percentile total latency in cycles.
    pub p99: f64,
    /// 99.9th-percentile total latency in cycles.
    pub p999: f64,
    /// Mean total latency in cycles.
    pub mean: f64,
    /// Fraction of requests that missed their SLO deadline.
    pub violation_rate: f64,
}

/// The serving sweep, summarized for `BENCH_repro.json`.
#[derive(Debug, Clone)]
pub struct ServingSummary {
    /// Requests per GPU in each cell.
    pub requests_per_gpu: usize,
    /// One entry per (load, arrivals, scheme) cell.
    pub cells: Vec<ServingCell>,
}

/// Mean inter-arrival gaps (cycles) defining the offered-load axis.
///
/// The hot Zipf pair's link saturates during bursts near a 5-cycle mean
/// gap, so `gap5` probes the congestion knee while `gap12` is a moderate
/// load where only bursts queue.
fn load_points() -> [f64; 2] {
    [5.0, 12.0]
}

/// The burstiness axis: steady Poisson and the 8× on/off MMPP at the
/// same time-averaged rate.
fn arrival_points(mean_gap: f64) -> [(&'static str, ArrivalProcess); 2] {
    [
        ("poisson", ArrivalProcess::poisson(mean_gap)),
        (
            "bursty",
            ArrivalProcess::bursty(mean_gap, BURST_FACTOR, MEAN_DWELL),
        ),
    ]
}

/// The scheme axis: the paper's fixed policies plus both adaptive
/// variants.
fn serving_configs(base: &SystemConfig) -> Vec<(String, SystemConfig)> {
    vec![
        ("private-4x".into(), configs::private(base, 4)),
        ("dynamic-4x".into(), configs::dynamic(base, 4)),
        ("dynamic-load-4x".into(), configs::load_dynamic(base, 4)),
        ("batching-4x".into(), configs::batching(base, 4)),
        (
            "batching-deadline-4x".into(),
            configs::deadline_batching(base, 4),
        ),
    ]
}

/// Runs one serving cell: open-loop pacing over the seeded serving trace.
#[must_use]
pub fn run_cell(cfg: &SystemConfig, process: ArrivalProcess, per_gpu: usize) -> RunReport {
    let model = ServingModel::new(GPUS, SEED, process)
        .with_zipf(ZIPF_S)
        .with_deadline(Duration::cycles(SLO_BUDGET));
    Simulation::new(cfg.clone(), Benchmark::MatrixTranspose, SEED)
        .with_open_loop()
        .run_trace(model.generate_all(per_gpu))
}

fn cell_summary(load: &str, arrivals: &str, scheme: &str, report: &RunReport) -> ServingCell {
    let lat = &report.latency;
    ServingCell {
        load: load.to_string(),
        arrivals: arrivals.to_string(),
        scheme: scheme.to_string(),
        p50: lat.total_percentile(50.0).unwrap_or(f64::NAN),
        p99: lat.total_percentile(99.0).unwrap_or(f64::NAN),
        p999: lat.total_percentile(99.9).unwrap_or(f64::NAN),
        mean: lat.mean_total(),
        violation_rate: lat.violation_rate(),
    }
}

/// Runs the full sweep and returns the per-cell summaries.
#[must_use]
pub fn sweep(mode: Mode) -> ServingSummary {
    let per_gpu = mode.requests();
    let base = SystemConfig::paper_4gpu();
    let schemes = serving_configs(&base);
    let mut cells = Vec::new();
    for mean_gap in load_points() {
        let load = format!("gap{mean_gap:.0}");
        for (arrivals, process) in arrival_points(mean_gap) {
            for (scheme, cfg) in &schemes {
                let report = run_cell(cfg, process, per_gpu);
                cells.push(cell_summary(&load, arrivals, scheme, &report));
            }
        }
    }
    ServingSummary {
        requests_per_gpu: per_gpu,
        cells,
    }
}

/// Summary of the serving sweep (folded into `BENCH_repro.json` by the
/// `repro` binary when the `serving` experiment is among the run ids).
#[must_use]
pub fn summary(mode: Mode) -> ServingSummary {
    sweep(mode)
}

/// The `serving` experiment: one row per (load, arrivals, scheme) cell.
#[must_use]
pub fn serving(mode: Mode) -> Vec<Table> {
    let s = sweep(mode);
    let mut t = Table::new(
        "Serving: tail latency under open-loop load (cycles)",
        &[
            "load", "arrivals", "scheme", "p50", "p99", "p999", "mean", "slo-viol",
        ],
    );
    for c in &s.cells {
        t.add_row(vec![
            c.load.clone(),
            c.arrivals.clone(),
            c.scheme.clone(),
            format!("{:.0}", c.p50),
            format!("{:.0}", c.p99),
            format!("{:.0}", c.p999),
            format!("{:.1}", c.mean),
            percent(c.violation_rate),
        ]);
    }
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bursty_cell(scheme_label: &str, mean_gap: f64, per_gpu: usize) -> ServingCell {
        let base = SystemConfig::paper_4gpu();
        let (label, cfg) = serving_configs(&base)
            .into_iter()
            .find(|(l, _)| l == scheme_label)
            .expect("scheme label exists");
        let process = ArrivalProcess::bursty(mean_gap, BURST_FACTOR, MEAN_DWELL);
        let report = run_cell(&cfg, process, per_gpu);
        cell_summary("test", "bursty", &label, &report)
    }

    #[test]
    fn serving_smoke_is_finite_ordered_and_deterministic() {
        let a = bursty_cell("dynamic-4x", 5.0, Mode::Bench.requests());
        let b = bursty_cell("dynamic-4x", 5.0, Mode::Bench.requests());
        for c in [&a, &b] {
            assert!(c.p50.is_finite() && c.p99.is_finite() && c.p999.is_finite());
            assert!(
                c.p50 <= c.p99 && c.p99 <= c.p999,
                "percentiles must be ordered: {} {} {}",
                c.p50,
                c.p99,
                c.p999
            );
            assert!((0.0..=1.0).contains(&c.violation_rate));
        }
        assert_eq!(a.p50, b.p50);
        assert_eq!(a.p99, b.p99);
        assert_eq!(a.p999, b.p999);
        assert_eq!(a.violation_rate, b.violation_rate);
    }

    #[test]
    fn open_loop_latency_counts_queueing_delay() {
        // Under heavy load the total latency (from arrival) must exceed
        // the service latency (from issue) in the tail: that gap *is* the
        // queueing delay open-loop pacing exposes.
        let base = SystemConfig::paper_4gpu();
        let cfg = configs::dynamic(&base, 4);
        let report = run_cell(
            &cfg,
            ArrivalProcess::bursty(5.0, BURST_FACTOR, MEAN_DWELL),
            100,
        );
        let lat = &report.latency;
        assert_eq!(lat.total.len() as u64, report.requests);
        assert_eq!(lat.total.len(), lat.service.len());
        assert!(
            lat.total_percentile(99.0).unwrap() >= percentile_of(&lat.service, 99.0),
            "total latency can only add queueing delay on top of service"
        );
        // Every request carried a deadline.
        assert_eq!(lat.with_deadline, report.requests);
    }

    fn percentile_of(samples: &[f64], p: f64) -> f64 {
        mgpu_sim::stats::percentile(samples, p).unwrap()
    }

    #[test]
    fn adaptive_variants_improve_bursty_p99_over_parents() {
        // The acceptance bar for this experiment: on at least one bursty
        // cell, each adaptive variant beats its fixed-policy parent's
        // p99. Quick-size cells keep this deterministic and cheap.
        let per_gpu = Mode::Quick.requests();
        let mut load_win = false;
        let mut deadline_win = false;
        for mean_gap in load_points() {
            let dynamic = bursty_cell("dynamic-4x", mean_gap, per_gpu);
            let load_dynamic = bursty_cell("dynamic-load-4x", mean_gap, per_gpu);
            let batching = bursty_cell("batching-4x", mean_gap, per_gpu);
            let deadline = bursty_cell("batching-deadline-4x", mean_gap, per_gpu);
            if load_dynamic.p99 < dynamic.p99 {
                load_win = true;
            }
            if deadline.p99 < batching.p99 {
                deadline_win = true;
            }
        }
        assert!(
            load_win,
            "load-triggered repartition should beat fixed-interval p99 on a bursty cell"
        );
        assert!(
            deadline_win,
            "deadline-aware close should beat fixed-timeout p99 on a bursty cell"
        );
    }

    #[test]
    #[ignore]
    fn dump_sweep() {
        for c in sweep(Mode::Quick).cells {
            println!(
                "{:>7} {:>8} {:>22} p50={:>7.0} p99={:>7.0} p999={:>8.0} mean={:>8.1} viol={:.3}",
                c.load, c.arrivals, c.scheme, c.p50, c.p99, c.p999, c.mean, c.violation_rate
            );
        }
    }

    #[test]
    fn table_covers_the_full_sweep() {
        let t = &serving(Mode::Bench)[0];
        // 2 loads x 2 arrival processes x 5 schemes.
        assert_eq!(t.len(), 20);
    }
}
