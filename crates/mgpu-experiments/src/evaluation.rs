//! Evaluation-section experiments: Figs. 21–26 and Table IV.

use crate::common::{self, Mode};
use crate::motivation::otp_distribution_table;
use crate::report::{percent, ratio, Table};
use mgpu_system::runner::configs;
use mgpu_types::{Duration, SystemConfig};
use mgpu_workloads::Benchmark;

/// Fig. 21: the main result — Private 4×/16×, Cached 4×, Dynamic 4× and
/// Dynamic+Batching 4×, normalized to the unsecure 4-GPU system.
#[must_use]
pub fn fig21(mode: Mode) -> Vec<Table> {
    vec![normalized_table(
        "Fig. 21: execution times with 4 GPUs",
        &SystemConfig::paper_4gpu(),
        &common::fig21_configs(&SystemConfig::paper_4gpu()),
        mode,
    )]
}

/// Shared scaffolding: normalized execution times per benchmark +
/// geomean, one column per configuration. All cells are computed up front
/// in parallel; the assembly loop below then reads the warm cache.
fn normalized_table(
    title: &str,
    base: &SystemConfig,
    cfgs: &[(String, SystemConfig)],
    mode: Mode,
) -> Table {
    common::prefetch(&common::table_cells(base, cfgs, mode), mode);
    let mut headers: Vec<&str> = vec!["bench"];
    headers.extend(cfgs.iter().map(|(l, _)| l.as_str()));
    let mut t = Table::new(title, &headers);
    let mut columns: Vec<Vec<f64>> = vec![Vec::new(); cfgs.len()];
    for &bench in mode.suite() {
        let baseline = common::run_baseline(base, bench, mode);
        let mut row = vec![bench.abbrev().to_string()];
        for (i, (_, cfg)) in cfgs.iter().enumerate() {
            let r = common::run(cfg, bench, mode);
            let n = r.normalized_time(&baseline).unwrap_or(1.0);
            columns[i].push(n);
            row.push(ratio(n));
        }
        t.add_row(row);
    }
    let mut row = vec!["geomean".to_string()];
    for col in &columns {
        row.push(ratio(common::geomean(col)));
    }
    t.add_row(row);
    t
}

/// Fig. 22: OTP latency-hiding distribution for Private, Cached and Ours
/// (Dynamic + Batching).
#[must_use]
pub fn fig22(mode: Mode) -> Vec<Table> {
    let base = SystemConfig::paper_4gpu();
    vec![otp_distribution_table(
        "Fig. 22: OTP distribution, Private vs Cached vs Ours (4 GPUs)",
        &common::ours_triple(&base),
        mode,
    )]
}

/// Fig. 23: interconnect traffic for Private, Cached and Ours, normalized
/// to the unsecure system.
#[must_use]
pub fn fig23(mode: Mode) -> Vec<Table> {
    let base = SystemConfig::paper_4gpu();
    let cfgs = common::ours_triple(&base);
    common::prefetch(&common::table_cells(&base, &cfgs, mode), mode);
    let mut headers: Vec<&str> = vec!["bench"];
    headers.extend(cfgs.iter().map(|(l, _)| l.as_str()));
    let mut t = Table::new("Fig. 23: communication traffic (4 GPUs, OTP 4x)", &headers);
    let mut columns: Vec<Vec<f64>> = vec![Vec::new(); cfgs.len()];
    for &bench in mode.suite() {
        let baseline = common::run_baseline(&base, bench, mode);
        let mut row = vec![bench.abbrev().to_string()];
        for (i, (_, cfg)) in cfgs.iter().enumerate() {
            let r = common::run(cfg, bench, mode);
            let tr = r.traffic_ratio(&baseline).unwrap_or(1.0);
            columns[i].push(tr);
            row.push(ratio(tr));
        }
        t.add_row(row);
    }
    let mut row = vec!["geomean".to_string()];
    for col in &columns {
        row.push(ratio(common::geomean(col)));
    }
    t.add_row(row);
    vec![t]
}

/// Figs. 24/25: execution times for 8- and 16-GPU systems
/// (Private / Cached / Ours, normalized to the matching unsecure system).
#[must_use]
pub fn scale(mode: Mode, gpus: u16) -> Vec<Table> {
    let base = match gpus {
        8 => SystemConfig::paper_8gpu(),
        16 => SystemConfig::paper_16gpu(),
        _ => panic!("scaling experiments cover 8 and 16 GPUs"),
    };
    let figure = if gpus == 8 { "Fig. 24" } else { "Fig. 25" };
    vec![normalized_table(
        &format!("{figure}: execution times with {gpus} GPUs"),
        &base,
        &common::ours_triple(&base),
        mode,
    )]
}

/// Fig. 26: sensitivity to AES-GCM latency (10–40 cycles) for Private,
/// Cached and Ours; suite geomeans.
#[must_use]
pub fn fig26(mode: Mode) -> Vec<Table> {
    let mut t = Table::new(
        "Fig. 26: AES-GCM latency sensitivity (4 GPUs)",
        &["aes-latency", "private-4x", "cached-4x", "ours"],
    );
    for cycles in [10u64, 20, 30, 40] {
        let mut base = SystemConfig::paper_4gpu();
        base.security.aes_latency = Duration::cycles(cycles);
        let cfgs = common::ours_triple(&base);
        let mut cells: Vec<common::Cell> = Vec::new();
        for (_, cfg) in &cfgs {
            for &bench in mode.suite() {
                cells.push((common::baseline_of(cfg), bench));
                cells.push((cfg.clone(), bench));
            }
        }
        common::prefetch(&cells, mode);
        let mut row = vec![format!("{cycles}cy")];
        for (_, cfg) in &cfgs {
            let mut values = Vec::new();
            for &bench in mode.suite() {
                let baseline = common::run_baseline(cfg, bench, mode);
                let r = common::run(cfg, bench, mode);
                values.push(r.normalized_time(&baseline).unwrap_or(1.0));
            }
            row.push(ratio(common::geomean(&values)));
        }
        t.add_row(row);
    }
    vec![t]
}

/// Table III: the simulated system configuration, as actually wired into
/// the model (so config drift from the paper is immediately visible).
#[must_use]
pub fn table3(_mode: Mode) -> Vec<Table> {
    let cfg = SystemConfig::paper_4gpu();
    let mut t = Table::new("Table III: simulated GPU system", &["parameter", "value"]);
    let rows: Vec<(&str, String)> = vec![
        ("system", format!("{} GPUs + CPU", cfg.gpu_count)),
        ("CUs per GPU", cfg.cus_per_gpu.to_string()),
        (
            "GPU-GPU link",
            format!("{} B/cycle (NVLink2-class)", cfg.gpu_link_bytes_per_cycle),
        ),
        (
            "CPU-GPU link",
            format!("{} B/cycle (PCIe v4)", cfg.pcie_bytes_per_cycle),
        ),
        ("link latency", cfg.link_latency.to_string()),
        ("HBM latency", cfg.dram_latency.to_string()),
        ("AES-GCM latency", cfg.security.aes_latency.to_string()),
        (
            "OTP multiplier",
            format!(
                "{}x ({} buffers/node)",
                cfg.security.otp_multiplier,
                cfg.total_otp_buffers_per_node()
            ),
        ),
        ("alpha", cfg.security.dynamic.alpha.to_string()),
        ("beta", cfg.security.dynamic.beta.to_string()),
        ("T", cfg.security.dynamic.interval.to_string()),
        ("batch size n", cfg.security.batching.batch_size.to_string()),
        (
            "batch flush timeout",
            cfg.security.batching.flush_timeout.to_string(),
        ),
        (
            "replay (ACK) table",
            format!("{} entries/node", cfg.security.ack_table_entries),
        ),
        ("max outstanding/GPU", cfg.max_outstanding.to_string()),
    ];
    for (k, v) in rows {
        t.add_row(vec![k.to_string(), v]);
    }
    vec![t]
}

/// Table IV: the evaluated workloads with suite, *measured* traffic
/// intensity (requests per kilocycle as the RPKI proxy — see DESIGN.md)
/// and the paper's class.
#[must_use]
pub fn table4(mode: Mode) -> Vec<Table> {
    let mut t = Table::new(
        "Table IV: evaluated benchmarks",
        &["bench", "suite", "class", "req-per-kcy", "migr-frac"],
    );
    let _ = mode;
    for bench in Benchmark::ALL {
        let p = bench.params();
        t.add_row(vec![
            bench.abbrev().to_string(),
            bench.suite().to_string(),
            bench.rpki_class().to_string(),
            format!("{:.1}", p.requests_per_kilocycle()),
            percent(p.migration_fraction),
        ]);
    }
    vec![t]
}

/// Ablation: batching batch-size sweep (extension beyond the paper's
/// fixed n = 16, motivated by its §IV-D mention of 16 vs 64).
#[must_use]
pub fn ablation_batch_size(mode: Mode) -> Vec<Table> {
    let base = SystemConfig::paper_4gpu();
    let mut t = Table::new(
        "Ablation: batch size sweep (Dynamic + Batching, 4 GPUs)",
        &[
            "batch-size",
            "normalized-time",
            "traffic-ratio",
            "mean-occupancy",
        ],
    );
    let sweep: Vec<SystemConfig> = [4u32, 8, 16, 32, 64]
        .iter()
        .map(|&n| {
            let mut cfg = configs::batching(&base, 4);
            cfg.security.batching.batch_size = n;
            cfg
        })
        .collect();
    let mut cells: Vec<common::Cell> = Vec::new();
    for cfg in &sweep {
        for &bench in mode.suite() {
            cells.push((common::baseline_of(cfg), bench));
            cells.push((cfg.clone(), bench));
        }
    }
    common::prefetch(&cells, mode);
    for (n, cfg) in [4u32, 8, 16, 32, 64].into_iter().zip(&sweep) {
        let mut times = Vec::new();
        let mut traffics = Vec::new();
        let mut occupancy = 0.0;
        let mut count = 0.0;
        for &bench in mode.suite() {
            let baseline = common::run_baseline(cfg, bench, mode);
            let r = common::run(cfg, bench, mode);
            times.push(r.normalized_time(&baseline).unwrap_or(1.0));
            traffics.push(r.traffic_ratio(&baseline).unwrap_or(1.0));
            occupancy += r.mean_batch_occupancy;
            count += 1.0;
        }
        t.add_row(vec![
            n.to_string(),
            ratio(common::geomean(&times)),
            ratio(common::geomean(&traffics)),
            format!("{:.1}", occupancy / count),
        ]);
    }
    vec![t]
}

/// Ablation: dynamic-allocator interval sweep (paper fixes T = 1000).
#[must_use]
pub fn ablation_interval(mode: Mode) -> Vec<Table> {
    let base = SystemConfig::paper_4gpu();
    let mut t = Table::new(
        "Ablation: Dynamic re-allocation interval T (4 GPUs)",
        &["interval", "normalized-time"],
    );
    let sweep: Vec<(u64, SystemConfig)> = [250u64, 500, 1_000, 2_000, 8_000]
        .iter()
        .map(|&interval| {
            let mut cfg = configs::dynamic(&base, 4);
            cfg.security.dynamic.interval = Duration::cycles(interval);
            (interval, cfg)
        })
        .collect();
    let mut cells: Vec<common::Cell> = Vec::new();
    for (_, cfg) in &sweep {
        for &bench in mode.suite() {
            cells.push((common::baseline_of(cfg), bench));
            cells.push((cfg.clone(), bench));
        }
    }
    common::prefetch(&cells, mode);
    for (interval, cfg) in &sweep {
        let mut times = Vec::new();
        for &bench in mode.suite() {
            let baseline = common::run_baseline(cfg, bench, mode);
            times.push(
                common::run(cfg, bench, mode)
                    .normalized_time(&baseline)
                    .unwrap_or(1.0),
            );
        }
        t.add_row(vec![interval.to_string(), ratio(common::geomean(&times))]);
    }
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geomean_row(t: &Table) -> Vec<f64> {
        t.to_csv()
            .lines()
            .last()
            .unwrap()
            .split(',')
            .skip(1)
            .map(|v| v.parse().unwrap())
            .collect()
    }

    #[test]
    fn fig21_ordering_holds() {
        let t = &fig21(Mode::Quick)[0];
        let g = geomean_row(t);
        let (p4, p16, _cached, dynamic, batching) = (g[0], g[1], g[2], g[3], g[4]);
        assert!(p4 > p16, "private 4x {p4} should exceed 16x {p16}");
        assert!(p4 > dynamic, "private {p4} should exceed dynamic {dynamic}");
        assert!(
            batching <= dynamic + 1e-9,
            "batching {batching} should not exceed dynamic {dynamic}"
        );
        assert!(
            batching < p4,
            "batching {batching} should beat private {p4}"
        );
    }

    #[test]
    fn fig23_batching_cuts_traffic() {
        let t = &fig23(Mode::Quick)[0];
        let g = geomean_row(t);
        let (private, cached, ours) = (g[0], g[1], g[2]);
        assert!(ours < private, "ours {ours} >= private {private}");
        assert!(ours < cached, "ours {ours} >= cached {cached}");
        assert!(private > 1.25, "private traffic {private}");
    }

    #[test]
    fn scale_rejects_other_sizes() {
        let result = std::panic::catch_unwind(|| scale(Mode::Quick, 6));
        assert!(result.is_err());
    }

    #[test]
    fn table3_reflects_the_wired_config() {
        let t = &table3(Mode::Quick)[0];
        let csv = t.to_csv();
        assert!(csv.contains("alpha,0.9"));
        assert!(csv.contains("beta,0.5"));
        assert!(csv.contains("T,1000cy"));
        assert!(csv.contains("AES-GCM latency,40cy"));
    }

    #[test]
    fn table4_lists_all_benchmarks() {
        let t = &table4(Mode::Quick)[0];
        assert_eq!(t.len(), 17);
        assert!(t.to_csv().contains("mt,AMD APP SDK,high"));
    }

    #[test]
    fn ablation_batch_size_traffic_monotone() {
        let t = &ablation_batch_size(Mode::Quick)[0];
        let traffics: Vec<f64> = t
            .to_csv()
            .lines()
            .skip(1)
            .map(|l| l.split(',').nth(2).unwrap().parse().unwrap())
            .collect();
        // Bigger batches amortize more metadata.
        assert!(traffics.first().unwrap() > traffics.last().unwrap());
    }
}
