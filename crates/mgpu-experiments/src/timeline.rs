//! `timeline` experiment: interval-resolved view of the dynamic
//! repartitioner under a two-phase traffic shift (a Fig. 13-style phase
//! plot, but of the *defense's* allocations rather than the workload).
//!
//! The request stream pivots mid-run: first GPU 2 pulls from GPU 1 for
//! several repartition intervals, then GPU 3 takes over as the sole
//! consumer. With observability enabled, the run's [`Timeline`] shows
//! GPU 1's per-peer send-window allocation following the shift — the
//! EWMA monitor drains the now-idle GPU 2 window into the newly hot
//! GPU 3 window within a few intervals.
//!
//! When `MGPU_TIMELINE_JSONL` names a path, the full timeline is also
//! written there as JSON Lines (schema in `EXPERIMENTS.md`); the CI
//! smoke job validates that file against the documented schema.

use crate::common::{Mode, SEED};
use crate::report::{percent, Table};
use mgpu_system::runner::configs;
use mgpu_system::timeseries::{Timeline, TimelineSummary};
use mgpu_system::Simulation;
use mgpu_types::{Cycle, NodeId, ObservabilityConfig, SystemConfig};
use mgpu_workloads::{Benchmark, Request};

/// Repartition intervals spent in each traffic phase.
fn phase_intervals(mode: Mode) -> u64 {
    match mode {
        Mode::Full => 10,
        Mode::Quick => 8,
        Mode::Bench => 6,
    }
}

/// Requests issued per repartition interval during a phase.
fn requests_per_interval(mode: Mode) -> u64 {
    match mode {
        Mode::Full => 16,
        Mode::Quick => 8,
        Mode::Bench => 4,
    }
}

/// The two-phase request stream: GPU 2 pulls from GPU 1, then GPU 3 does.
fn phase_shift_trace(mode: Mode, interval: u64) -> Vec<Request> {
    let intervals = phase_intervals(mode);
    let per_interval = requests_per_interval(mode);
    let spacing = interval / per_interval;
    let owner = NodeId::gpu(1);
    let mut reqs = Vec::with_capacity((2 * intervals * per_interval) as usize);
    for (phase, requester) in [NodeId::gpu(2), NodeId::gpu(3)].into_iter().enumerate() {
        let phase_start = phase as u64 * intervals * interval;
        for i in 0..intervals {
            for j in 0..per_interval {
                let at = Cycle::new(phase_start + i * interval + j * spacing);
                reqs.push(Request::direct(at, requester, owner));
            }
        }
    }
    reqs
}

/// Runs the phase-shift workload with observability on and returns the
/// collected timeline.
///
/// # Panics
///
/// Panics if the observed run fails to attach a timeline (a regression in
/// the collector wiring).
#[must_use]
pub fn run_timeline(mode: Mode) -> Timeline {
    let mut cfg = configs::dynamic(&SystemConfig::paper_4gpu(), 4);
    cfg.observability = ObservabilityConfig::enabled();
    let interval = cfg.security.dynamic.interval.as_u64();
    let trace = phase_shift_trace(mode, interval);
    let report = Simulation::new(cfg, Benchmark::MatrixMultiplication, SEED).run_trace(trace);
    report
        .timeline
        .expect("observability-enabled run attaches a timeline")
}

/// Summary percentiles of the timeline run (folded into
/// `BENCH_repro.json` by the `repro` binary).
#[must_use]
pub fn summary(mode: Mode) -> TimelineSummary {
    run_timeline(mode).summary()
}

/// The `timeline` experiment: one row per interval sample of GPU 1.
#[must_use]
pub fn timeline(mode: Mode) -> Vec<Table> {
    let tl = run_timeline(mode);
    let mut t = Table::new(
        "Timeline: GPU 1 send allocation under a traffic-phase shift",
        &[
            "cycle",
            "S",
            "alloc-cpu",
            "alloc-gpu2",
            "alloc-gpu3",
            "alloc-gpu4",
            "hit-rate",
            "rebalances",
        ],
    );
    let alloc = |s: &mgpu_system::IntervalSample, gpu: u16| -> String {
        let peer = if gpu == 0 {
            NodeId::CPU
        } else {
            NodeId::gpu(gpu)
        };
        s.send_alloc.get(&peer).copied().unwrap_or(0).to_string()
    };
    for s in tl.samples.iter().filter(|s| s.node == NodeId::gpu(1)) {
        t.add_row(vec![
            s.cycle.as_u64().to_string(),
            s.send_weight
                .map_or_else(|| "-".to_string(), |w| format!("{w:.3}")),
            alloc(s, 0),
            alloc(s, 2),
            alloc(s, 3),
            alloc(s, 4),
            s.hit_rate().map_or_else(|| "-".to_string(), percent),
            s.rebalances.to_string(),
        ]);
    }

    if let Ok(path) = std::env::var("MGPU_TIMELINE_JSONL") {
        if !path.is_empty() {
            match std::fs::write(&path, tl.to_jsonl()) {
                Ok(()) => eprintln!("wrote {path}"),
                Err(err) => eprintln!("failed to write {path}: {err}"),
            }
        }
    }
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    /// GPU 1's send allocation toward each phase's consumer at `sample`.
    fn allocs(s: &mgpu_system::IntervalSample) -> (u32, u32) {
        (
            s.send_alloc.get(&NodeId::gpu(2)).copied().unwrap_or(0),
            s.send_alloc.get(&NodeId::gpu(3)).copied().unwrap_or(0),
        )
    }

    #[test]
    fn allocations_track_the_phase_shift() {
        let tl = run_timeline(Mode::Bench);
        let gpu1: Vec<_> = tl
            .samples
            .iter()
            .filter(|s| s.node == NodeId::gpu(1) && !s.send_alloc.is_empty())
            .collect();
        assert!(
            gpu1.len() >= 4,
            "run spans several interval boundaries, got {}",
            gpu1.len()
        );
        // After the first monitored interval GPU 2 is the hot consumer...
        let (early_g2, early_g3) = allocs(gpu1[1]);
        assert!(
            early_g2 > early_g3,
            "early: gpu2 {early_g2} should exceed gpu3 {early_g3}"
        );
        // ...and by the end the allocation has followed the shift to GPU 3.
        let (late_g2, late_g3) = allocs(gpu1[gpu1.len() - 1]);
        assert!(
            late_g3 > late_g2,
            "late: gpu3 {late_g3} should exceed gpu2 {late_g2}"
        );
        // GPU 1 only serves data in this trace, so its EWMA direction
        // weight leans toward send.
        let s = gpu1[gpu1.len() - 1]
            .send_weight
            .expect("dynamic scheme exposes S");
        assert!(s > 0.5, "send-direction weight {s}");
    }

    #[test]
    fn table_has_one_row_per_gpu1_sample() {
        let tl = run_timeline(Mode::Bench);
        let expected = tl
            .samples
            .iter()
            .filter(|s| s.node == NodeId::gpu(1))
            .count();
        let t = &timeline(Mode::Bench)[0];
        assert_eq!(t.len(), expected);
        assert!(!t.is_empty());
    }

    #[test]
    fn jsonl_export_round_trips_through_env_knob() {
        // The env knob is exercised by the CI smoke step; here we only
        // check the serialized form the step validates.
        let tl = run_timeline(Mode::Bench);
        let jsonl = tl.to_jsonl();
        assert!(jsonl.lines().next().unwrap().contains("\"kind\":\"meta\""));
        assert!(jsonl.contains("\"kind\":\"interval\""));
        assert!(jsonl.contains("\"kind\":\"fabric\""));
    }
}
