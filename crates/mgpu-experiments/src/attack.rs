//! Attack campaign: sweeps the wire-level adversary's injection rate
//! across the secure schemes and reports what the defenses caught.
//!
//! Every injected fault must be detected (the paper's integrity/freshness
//! guarantees are all-or-nothing), and a fault-free run must log nothing —
//! both are asserted by this module's tests and rendered as tables by the
//! `repro attack_campaign` experiment.

use crate::common::{self, Mode};
use crate::report::{percent, ratio, Table};
use mgpu_secure::adversary::{FaultKind, SecurityEventLog};
use mgpu_system::runner::configs;
use mgpu_types::{AdversaryConfig, SystemConfig};
use mgpu_workloads::Benchmark;

/// The schemes under attack: the paper's Private baseline, Dynamic, and
/// the full Dynamic + Batching proposal (which adds the batched-MAC
/// surface: trailers, reordering, lazy verification).
fn scheme_set(base: &SystemConfig) -> Vec<(String, SystemConfig)> {
    vec![
        ("private-4x".into(), configs::private(base, 4)),
        ("dynamic-4x".into(), configs::dynamic(base, 4)),
        ("batching-4x".into(), configs::batching(base, 4)),
    ]
}

/// Injection rates swept, in permille per wire crossing. Rate 0 keeps the
/// harness enabled but silent — the false-positive control.
fn rates(mode: Mode) -> &'static [u32] {
    match mode {
        Mode::Full => &[0, 5, 20, 100],
        Mode::Quick | Mode::Bench => &[0, 20, 100],
    }
}

/// Benchmarks attacked: one transpose-heavy and one sparse pattern.
fn benches(mode: Mode) -> &'static [Benchmark] {
    match mode {
        Mode::Full | Mode::Quick => &[Benchmark::MatrixTranspose, Benchmark::Spmv],
        Mode::Bench => &[Benchmark::MatrixTranspose],
    }
}

/// `cfg` with the adversary armed at `rate_permille`.
fn with_adversary(cfg: &SystemConfig, rate_permille: u32) -> SystemConfig {
    let mut c = cfg.clone();
    c.adversary = AdversaryConfig::active(rate_permille);
    c
}

/// Merged security log for one scheme at one rate across the mode's
/// attack benchmarks.
fn campaign_log(cfg: &SystemConfig, rate: u32, mode: Mode) -> SecurityEventLog {
    let armed = with_adversary(cfg, rate);
    let mut log = SecurityEventLog::new();
    for &bench in benches(mode) {
        log.merge(&common::run(&armed, bench, mode).security);
    }
    log
}

/// The `attack_campaign` experiment: a detection summary over the
/// scheme × rate sweep, plus a per-fault-kind breakdown at the highest
/// rate.
#[must_use]
pub fn attack_campaign(mode: Mode) -> Vec<Table> {
    let base = SystemConfig::paper_4gpu();
    let schemes = scheme_set(&base);
    let rate_sweep = rates(mode);
    let mut cells: Vec<common::Cell> = Vec::new();
    for &rate in rate_sweep {
        for (_, cfg) in &schemes {
            for &bench in benches(mode) {
                cells.push((with_adversary(cfg, rate), bench));
            }
        }
    }
    common::prefetch(&cells, mode);

    let mut summary = Table::new(
        "Attack campaign: detection summary",
        &[
            "scheme",
            "rate-permille",
            "injected",
            "detected",
            "missed",
            "false-pos",
            "detection",
            "mean-ttd",
        ],
    );
    for (label, cfg) in &schemes {
        for &rate in rate_sweep {
            let log = campaign_log(cfg, rate, mode);
            summary.add_row(vec![
                label.clone(),
                rate.to_string(),
                log.total_injected().to_string(),
                log.total_detected().to_string(),
                log.total_missed().to_string(),
                log.false_positives().to_string(),
                percent(log.detection_rate()),
                ratio(log.mean_time_to_detection()),
            ]);
        }
    }

    let top_rate = *rate_sweep.last().expect("rate sweep is non-empty");
    let mut breakdown = Table::new(
        format!("Attack campaign: per-fault breakdown at {top_rate} permille"),
        &["scheme", "fault", "injected", "detected", "missed"],
    );
    for (label, cfg) in &schemes {
        let log = campaign_log(cfg, top_rate, mode);
        for kind in FaultKind::ALL {
            breakdown.add_row(vec![
                label.clone(),
                kind.to_string(),
                log.injected_of(kind).to_string(),
                log.detected_of(kind).to_string(),
                log.missed_of(kind).to_string(),
            ]);
        }
    }

    vec![summary, breakdown]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::SEED;
    use mgpu_system::Simulation;

    #[test]
    fn every_injection_is_detected_and_clean_runs_stay_clean() {
        let base = SystemConfig::paper_4gpu();
        for (label, cfg) in scheme_set(&base) {
            for &rate in rates(Mode::Bench) {
                let log = campaign_log(&cfg, rate, Mode::Bench);
                assert_eq!(log.total_missed(), 0, "{label} rate {rate}: missed");
                assert_eq!(
                    log.false_positives(),
                    0,
                    "{label} rate {rate}: false positives"
                );
                if rate == 0 {
                    assert!(log.is_clean(), "{label}: rate-0 control logged events");
                } else {
                    assert!(log.total_injected() > 0, "{label} rate {rate}: no faults");
                    assert!(
                        (log.detection_rate() - 1.0).abs() < f64::EPSILON,
                        "{label} rate {rate}: detection below 100%"
                    );
                }
            }
        }
    }

    #[test]
    fn batching_campaign_exercises_every_fault_kind() {
        // A hot enough rate on the batched scheme hits all seven kinds,
        // including the trailer-only ones.
        let cfg = with_adversary(&configs::batching(&SystemConfig::paper_4gpu(), 4), 300);
        let report = common::run(&cfg, Benchmark::MatrixTranspose, Mode::Quick);
        for kind in FaultKind::ALL {
            assert!(
                report.security.injected_of(kind) > 0,
                "fault kind {kind} never injected"
            );
            assert_eq!(
                report.security.missed_of(kind),
                0,
                "fault kind {kind} missed"
            );
        }
    }

    #[test]
    fn campaign_is_deterministic_across_runs() {
        // Bypasses the cell cache: two fresh simulations, same seed.
        let cfg = with_adversary(&configs::dynamic(&SystemConfig::paper_4gpu(), 4), 100);
        let a = Simulation::new(cfg.clone(), Benchmark::MatrixTranspose, SEED)
            .run_for_requests(Mode::Bench.requests());
        let b = Simulation::new(cfg, Benchmark::MatrixTranspose, SEED)
            .run_for_requests(Mode::Bench.requests());
        assert_eq!(a.security, b.security);
        assert_eq!(a.tampered_crossings, b.tampered_crossings);
    }

    #[test]
    fn tables_have_expected_shape() {
        let tables = attack_campaign(Mode::Bench);
        assert_eq!(tables.len(), 2);
        let schemes = 3;
        let n_rates = rates(Mode::Bench).len();
        assert_eq!(tables[0].len(), schemes * n_rates);
        assert_eq!(tables[1].len(), schemes * FaultKind::ALL.len());
        assert!(tables[0].to_text().contains("detection"));
    }
}
