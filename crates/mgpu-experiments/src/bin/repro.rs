//! `repro` — regenerate the paper's tables and figures.
//!
//! ```text
//! repro [--quick] [--csv DIR] [--bench-json FILE] <experiment-id>... | all | list
//! ```
//!
//! Every run also writes a machine-readable benchmark record
//! (`BENCH_repro.json` by default) with per-experiment wall-clock seconds,
//! the total, the git revision (plus whether the tree was dirty, so stale
//! records are attributable), and the run mode, so performance can be
//! tracked across commits. When the `timeline` experiment is among the
//! run ids, the record also carries an `observability` block with the
//! timeline's summary percentiles; when the `serving` experiment is among
//! them, a `serving` block records each cell's tail-latency percentiles
//! and SLO-violation rate; when the `leakage` experiment is among them,
//! a `leakage` block records the passive-observer frontier (classifier
//! accuracy, phase recovery, and defense overheads per variant). Every
//! record carries an `engine` block
//! (events/sec over a fixed, never-cached calibration cell) so raw engine
//! throughput is tracked alongside suite wall-clock. Emitting a record
//! from a dirty tree prints a loud warning: its timings are not
//! attributable to the recorded revision. The full schema is documented
//! in `EXPERIMENTS.md`.

use mgpu_experiments::common::cache_counters;
use mgpu_experiments::leakage::LeakageSummary;
use mgpu_experiments::serving::ServingSummary;
use mgpu_experiments::{find, leakage, registry, serving, timeline, Mode};
use mgpu_system::runner::configs;
use mgpu_system::timeseries::TimelineSummary;
use mgpu_system::Simulation;
use mgpu_types::{SystemConfig, TopologyKind};
use mgpu_workloads::Benchmark;
use std::path::PathBuf;
use std::process::ExitCode;

/// One experiment's entry in the benchmark record: wall-clock plus the
/// cell-cache delta, so warm-cache timings are distinguishable from real
/// simulation work.
struct Timing {
    id: String,
    seconds: f64,
    cache_hits: u64,
    cache_misses: u64,
}

/// Engine-throughput calibration: one fixed simulation cell timed fresh
/// (never cached), so `events_per_sec` is comparable across commits and
/// modes.
struct EngineThroughput {
    events_processed: u64,
    seconds: f64,
    events_per_sec: f64,
}

/// Runs the calibration cell — the 4-GPU batching matrix transpose at 400
/// requests, the shape fig25 leans on hardest — and derives events/sec
/// from the engine's popped-event count.
fn measure_engine_throughput() -> EngineThroughput {
    let cfg = configs::batching(&SystemConfig::paper_4gpu(), 4);
    let sim = Simulation::new(cfg, Benchmark::MatrixTranspose, 42);
    let started = std::time::Instant::now();
    let report = sim.run_for_requests(400);
    let seconds = started.elapsed().as_secs_f64();
    EngineThroughput {
        events_processed: report.events_processed,
        seconds,
        events_per_sec: report.events_processed as f64 / seconds.max(f64::EPSILON),
    }
}

/// One point on the shard-scaling curve: wall-clock for the 128-GPU
/// switch cell at a given shard count.
struct ShardPoint {
    shards: u16,
    seconds: f64,
    events_per_sec: f64,
}

/// The shard-scaling headline block: the 128-GPU switch cell end-to-end
/// at 1/2/4/8 shards. Every point must process the same event count
/// (the sharded engine is bit-identical to the single-thread engine), so
/// the curve isolates pure engine wall-clock. `host_cores` is recorded
/// because the curve is only meaningful relative to the physical
/// parallelism available: on a single-core host it is expected to be
/// flat-to-negative.
struct ShardScaling {
    gpus: u16,
    requests_per_gpu: usize,
    host_cores: usize,
    events_processed: u64,
    points: Vec<ShardPoint>,
}

/// Runs the shard-scaling headline cell: 128 GPUs on a radix-4 switch
/// hierarchy under the full Dynamic+Batching scheme, swept over shard
/// counts. Panics if any shard count diverges from the single-thread
/// event count — the bit-for-bit contract is checked at measurement
/// time, not assumed.
fn measure_shard_scaling() -> ShardScaling {
    let mut base = SystemConfig::paper_4gpu();
    base.gpu_count = 128;
    let base = base.with_topology(TopologyKind::Switch { radix: 4 });
    let cfg = configs::batching(&base, 4);
    let requests_per_gpu = 50;
    let host_cores = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
    let mut points = Vec::new();
    let mut events_processed = 0u64;
    for shards in [1u16, 2, 4, 8] {
        let sim = Simulation::new(cfg.clone(), Benchmark::MatrixTranspose, 42).with_shards(shards);
        let started = std::time::Instant::now();
        let report = sim.run_for_requests(requests_per_gpu);
        let seconds = started.elapsed().as_secs_f64();
        if shards == 1 {
            events_processed = report.events_processed;
        } else {
            assert_eq!(
                report.events_processed, events_processed,
                "shards={shards} diverged from the single-thread engine"
            );
        }
        points.push(ShardPoint {
            shards,
            seconds,
            events_per_sec: report.events_processed as f64 / seconds.max(f64::EPSILON),
        });
    }
    ShardScaling {
        gpus: 128,
        requests_per_gpu,
        host_cores,
        events_processed,
        points,
    }
}

fn usage() -> ExitCode {
    eprintln!("usage: repro [--quick] [--csv DIR] [--bench-json FILE] <id>... | all | list");
    eprintln!("experiments:");
    for e in registry() {
        eprintln!("  {:18} {}", e.id, e.title);
    }
    ExitCode::FAILURE
}

/// Removes duplicate ids while keeping first-occurrence order (`Vec::dedup`
/// only collapses *adjacent* repeats, so `fig21 fig23 fig21` would run
/// fig21 twice).
fn dedup_preserving_order(ids: Vec<String>) -> Vec<String> {
    let mut seen = std::collections::HashSet::new();
    ids.into_iter()
        .filter(|id| seen.insert(id.clone()))
        .collect()
}

/// The current git revision, best-effort (`"unknown"` outside a checkout).
fn git_rev() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|out| out.status.success())
        .map(|out| String::from_utf8_lossy(&out.stdout).trim().to_string())
        .unwrap_or_else(|| "unknown".to_string())
}

/// Whether the working tree has uncommitted changes; `None` outside a
/// checkout (serialized as `null` so "unknown" is distinguishable from
/// "clean").
fn git_dirty() -> Option<bool> {
    std::process::Command::new("git")
        .args(["status", "--porcelain"])
        .output()
        .ok()
        .filter(|out| out.status.success())
        .map(|out| !out.stdout.is_empty())
}

fn json_escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => "\\\"".chars().collect::<Vec<_>>(),
            '\\' => "\\\\".chars().collect(),
            '\n' => "\\n".chars().collect(),
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

/// `Option<f64>` as a JSON value (`null` for absent or non-finite).
fn json_opt(x: Option<f64>) -> String {
    match x {
        Some(v) if v.is_finite() => format!("{v:.6}"),
        _ => "null".to_string(),
    }
}

/// `Option<bool>` as a JSON value (`null` for unknown).
fn json_opt_bool(x: Option<bool>) -> String {
    x.map_or_else(|| "null".to_string(), |b| b.to_string())
}

/// Optional per-experiment summary blocks: each is present in the record
/// only when the corresponding experiment was part of the run.
#[derive(Default)]
struct SummaryBlocks {
    observability: Option<TimelineSummary>,
    serving: Option<ServingSummary>,
    leakage: Option<LeakageSummary>,
}

/// Renders the benchmark record. Hand-rolled JSON: the schema is a handful
/// of keys and a flat array, not worth a serializer dependency. Documented
/// in `EXPERIMENTS.md`.
fn bench_json(
    mode: Mode,
    timings: &[Timing],
    total_seconds: f64,
    summaries: &SummaryBlocks,
    engine: &EngineThroughput,
    shard_scaling: &ShardScaling,
) -> String {
    let mode_name = match mode {
        Mode::Full => "full",
        Mode::Quick => "quick",
        Mode::Bench => "bench",
    };
    let mut out = String::from("{\n");
    out.push_str(&format!(
        "  \"git_rev\": \"{}\",\n",
        json_escape(&git_rev())
    ));
    out.push_str(&format!(
        "  \"git_dirty\": {},\n",
        json_opt_bool(git_dirty())
    ));
    out.push_str(&format!("  \"mode\": \"{mode_name}\",\n"));
    out.push_str(&format!("  \"total_seconds\": {total_seconds:.3},\n"));
    out.push_str(&format!(
        "  \"crypto_backend\": \"{}\",\n",
        mgpu_crypto::backend::default_backend().name()
    ));
    let features = mgpu_crypto::backend::cpu_features()
        .iter()
        .map(|f| format!("\"{f}\""))
        .collect::<Vec<_>>()
        .join(", ");
    out.push_str(&format!("  \"cpu_features\": [{features}],\n"));
    out.push_str(&format!(
        "  \"engine\": {{\"events_per_sec\": {:.0}, \"events_processed\": {}, \
         \"cell_seconds\": {:.6}}},\n",
        engine.events_per_sec, engine.events_processed, engine.seconds,
    ));
    let points = shard_scaling
        .points
        .iter()
        .map(|p| {
            format!(
                "{{\"shards\": {}, \"seconds\": {:.6}, \"events_per_sec\": {:.0}}}",
                p.shards, p.seconds, p.events_per_sec
            )
        })
        .collect::<Vec<_>>()
        .join(", ");
    out.push_str(&format!(
        "  \"shard_scaling\": {{\"gpus\": {}, \"topology\": \"switch-r4\", \
         \"requests_per_gpu\": {}, \"host_cores\": {}, \"events_processed\": {}, \
         \"points\": [{points}]}},\n",
        shard_scaling.gpus,
        shard_scaling.requests_per_gpu,
        shard_scaling.host_cores,
        shard_scaling.events_processed,
    ));
    if let Some(s) = &summaries.observability {
        out.push_str(&format!(
            "  \"observability\": {{\"intervals\": {}, \"trace_events\": {}, \
             \"events_dropped\": {}, \"hit_rate_p50\": {}, \"hit_rate_p90\": {}, \
             \"queue_depth_p50\": {}, \"queue_depth_p90\": {}, \
             \"busy_horizon_p50\": {}, \"busy_horizon_p90\": {}}},\n",
            s.intervals,
            s.trace_events,
            s.events_dropped,
            json_opt(s.hit_rate_p50),
            json_opt(s.hit_rate_p90),
            json_opt(s.queue_depth_p50),
            json_opt(s.queue_depth_p90),
            json_opt(s.busy_horizon_p50),
            json_opt(s.busy_horizon_p90),
        ));
    }
    if let Some(s) = &summaries.serving {
        let cells = s
            .cells
            .iter()
            .map(|c| {
                format!(
                    "{{\"load\": \"{}\", \"arrivals\": \"{}\", \"scheme\": \"{}\", \
                     \"p50\": {}, \"p99\": {}, \"p999\": {}, \"mean\": {}, \
                     \"violation_rate\": {}}}",
                    json_escape(&c.load),
                    json_escape(&c.arrivals),
                    json_escape(&c.scheme),
                    json_opt(Some(c.p50)),
                    json_opt(Some(c.p99)),
                    json_opt(Some(c.p999)),
                    json_opt(Some(c.mean)),
                    json_opt(Some(c.violation_rate)),
                )
            })
            .collect::<Vec<_>>()
            .join(", ");
        out.push_str(&format!(
            "  \"serving\": {{\"requests_per_gpu\": {}, \"cells\": [{cells}]}},\n",
            s.requests_per_gpu,
        ));
    }
    if let Some(s) = &summaries.leakage {
        let cells = s
            .cells
            .iter()
            .map(|c| {
                format!(
                    "{{\"defense\": \"{}\", \"acc_ctrl\": {}, \"acc_full\": {}, \
                     \"phase_lock\": {}, \"phase_err\": {}, \"chaff_fraction\": {}, \
                     \"traffic_overhead\": {}, \"latency_overhead\": {}}}",
                    json_escape(&c.defense),
                    json_opt(Some(c.acc_ctrl)),
                    json_opt(Some(c.acc_full)),
                    json_opt(c.phase_lock),
                    json_opt(c.phase_err),
                    json_opt(Some(c.chaff_fraction)),
                    json_opt(Some(c.traffic_overhead)),
                    json_opt(Some(c.latency_overhead)),
                )
            })
            .collect::<Vec<_>>()
            .join(", ");
        out.push_str(&format!(
            "  \"leakage\": {{\"requests_per_gpu\": {}, \"classes\": {}, \
             \"chance\": {}, \"test_runs\": {}, \"cells\": [{cells}]}},\n",
            s.requests_per_gpu,
            s.classes,
            json_opt(Some(s.chance())),
            s.test_runs,
        ));
    }
    out.push_str("  \"experiments\": [\n");
    for (i, t) in timings.iter().enumerate() {
        let comma = if i + 1 < timings.len() { "," } else { "" };
        out.push_str(&format!(
            "    {{\"id\": \"{}\", \"seconds\": {:.3}, \"cache_hits\": {}, \
             \"cache_misses\": {}}}{comma}\n",
            json_escape(&t.id),
            t.seconds,
            t.cache_hits,
            t.cache_misses
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() -> ExitCode {
    let mut mode = Mode::Full;
    let mut csv_dir: Option<PathBuf> = None;
    let mut bench_json_path = PathBuf::from("BENCH_repro.json");
    let mut ids: Vec<String> = Vec::new();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => mode = Mode::Quick,
            "--csv" => match args.next() {
                Some(dir) => csv_dir = Some(PathBuf::from(dir)),
                None => return usage(),
            },
            "--bench-json" => match args.next() {
                Some(path) => bench_json_path = PathBuf::from(path),
                None => return usage(),
            },
            "list" | "--list" | "-l" => {
                for e in registry() {
                    println!("{:18} {}", e.id, e.title);
                }
                return ExitCode::SUCCESS;
            }
            "all" => ids.extend(registry().iter().map(|e| e.id.to_string())),
            other if other.starts_with('-') => return usage(),
            other => ids.push(other.to_string()),
        }
    }
    if ids.is_empty() {
        return usage();
    }
    let ids = dedup_preserving_order(ids);

    eprintln!(
        "crypto backend: {} (cpu features: {})",
        mgpu_crypto::backend::default_backend().name(),
        mgpu_crypto::backend::cpu_features().join(",")
    );
    let suite_started = std::time::Instant::now();
    let mut timings: Vec<Timing> = Vec::with_capacity(ids.len());
    for id in &ids {
        let Some(exp) = find(id) else {
            eprintln!("unknown experiment: {id}");
            return usage();
        };
        eprintln!("running {id} ({})...", exp.title);
        let started = std::time::Instant::now();
        let (hits_before, misses_before) = cache_counters();
        let tables = (exp.run)(mode);
        for table in &tables {
            println!("{}", table.to_text());
            if let Some(dir) = &csv_dir {
                match table.write_csv(dir) {
                    Ok(path) => eprintln!("wrote {}", path.display()),
                    Err(err) => {
                        eprintln!("failed to write CSV: {err}");
                        return ExitCode::FAILURE;
                    }
                }
            }
        }
        let seconds = started.elapsed().as_secs_f64();
        let (hits_after, misses_after) = cache_counters();
        let cache_hits = hits_after - hits_before;
        let cache_misses = misses_after - misses_before;
        eprintln!(
            "{id} finished in {seconds:.1}s ({cache_hits} cached cells, {cache_misses} simulated)"
        );
        timings.push(Timing {
            id: id.clone(),
            seconds,
            cache_hits,
            cache_misses,
        });
    }
    let total_seconds = suite_started.elapsed().as_secs_f64();
    eprintln!(
        "total: {total_seconds:.1}s across {} experiments",
        timings.len()
    );

    // The timeline run is cheap and deterministic; fold its summary
    // percentiles into the record whenever the experiment was part of the
    // suite.
    let summaries = SummaryBlocks {
        observability: ids
            .iter()
            .any(|id| id == "timeline")
            .then(|| timeline::summary(mode)),
        // The serving and leakage sweeps re-run here (their seeded cells
        // bypass the cell cache), but both are small and deterministic.
        serving: ids
            .iter()
            .any(|id| id == "serving")
            .then(|| serving::summary(mode)),
        leakage: ids
            .iter()
            .any(|id| id == "leakage")
            .then(|| leakage::summary(mode)),
    };
    let engine = measure_engine_throughput();
    eprintln!(
        "engine throughput: {:.0} events/sec ({} events in {:.3}s)",
        engine.events_per_sec, engine.events_processed, engine.seconds
    );
    let shard_scaling = measure_shard_scaling();
    eprintln!(
        "shard scaling ({}-GPU switch, {} host cores):",
        shard_scaling.gpus, shard_scaling.host_cores
    );
    for p in &shard_scaling.points {
        eprintln!(
            "  shards={}: {:.3}s ({:.0} events/sec)",
            p.shards, p.seconds, p.events_per_sec
        );
    }
    let record = bench_json(
        mode,
        &timings,
        total_seconds,
        &summaries,
        &engine,
        &shard_scaling,
    );
    if let Err(err) = std::fs::write(&bench_json_path, record) {
        eprintln!(
            "failed to write benchmark record {}: {err}",
            bench_json_path.display()
        );
        return ExitCode::FAILURE;
    }
    eprintln!("wrote {}", bench_json_path.display());
    if git_dirty() == Some(true) {
        eprintln!("==============================================================");
        eprintln!("WARNING: the working tree has uncommitted changes, so this");
        eprintln!("benchmark record carries \"git_dirty\": true. Its timings are");
        eprintln!(
            "not attributable to commit {} — do not check it in;",
            git_rev()
        );
        eprintln!("regenerate from a clean tree first.");
        eprintln!("==============================================================");
    }
    ExitCode::SUCCESS
}
