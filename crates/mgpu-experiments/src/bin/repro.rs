//! `repro` — regenerate the paper's tables and figures.
//!
//! ```text
//! repro [--quick] [--csv DIR] <experiment-id>... | all | list
//! ```

use mgpu_experiments::{find, registry, Mode};
use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!("usage: repro [--quick] [--csv DIR] <id>... | all | list");
    eprintln!("experiments:");
    for e in registry() {
        eprintln!("  {:18} {}", e.id, e.title);
    }
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let mut mode = Mode::Full;
    let mut csv_dir: Option<PathBuf> = None;
    let mut ids: Vec<String> = Vec::new();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => mode = Mode::Quick,
            "--csv" => match args.next() {
                Some(dir) => csv_dir = Some(PathBuf::from(dir)),
                None => return usage(),
            },
            "list" | "--list" | "-l" => {
                for e in registry() {
                    println!("{:18} {}", e.id, e.title);
                }
                return ExitCode::SUCCESS;
            }
            "all" => ids.extend(registry().iter().map(|e| e.id.to_string())),
            other if other.starts_with('-') => return usage(),
            other => ids.push(other.to_string()),
        }
    }
    if ids.is_empty() {
        return usage();
    }
    ids.dedup();

    for id in &ids {
        let Some(exp) = find(id) else {
            eprintln!("unknown experiment: {id}");
            return usage();
        };
        eprintln!("running {id} ({})...", exp.title);
        let started = std::time::Instant::now();
        let tables = (exp.run)(mode);
        for table in &tables {
            println!("{}", table.to_text());
            if let Some(dir) = &csv_dir {
                match table.write_csv(dir) {
                    Ok(path) => eprintln!("wrote {}", path.display()),
                    Err(err) => {
                        eprintln!("failed to write CSV: {err}");
                        return ExitCode::FAILURE;
                    }
                }
            }
        }
        eprintln!("{id} finished in {:.1}s", started.elapsed().as_secs_f64());
    }
    ExitCode::SUCCESS
}
