//! Text-table and CSV emission for experiment results.

use std::fmt::Write as _;
use std::io;
use std::path::Path;

/// A titled result table with aligned text and CSV renderings.
///
/// # Examples
///
/// ```
/// use mgpu_experiments::report::Table;
///
/// let mut t = Table::new("demo", &["bench", "slowdown"]);
/// t.add_row(vec!["mt".into(), "1.20".into()]);
/// assert!(t.to_text().contains("bench"));
/// assert!(t.to_csv().starts_with("bench,slowdown"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    #[must_use]
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(ToString::to_string).collect(),
            rows: Vec::new(),
        }
    }

    /// The table title.
    #[must_use]
    pub fn title(&self) -> &str {
        &self.title
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width does not match the headers.
    pub fn add_row(&mut self, row: Vec<String>) {
        assert_eq!(row.len(), self.headers.len(), "row width mismatch");
        self.rows.push(row);
    }

    /// Number of data rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders an aligned, human-readable text table.
    #[must_use]
    pub fn to_text(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}", w = w))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let _ = writeln!(out, "{}", fmt_row(&self.headers, &widths));
        let _ = writeln!(
            out,
            "{}",
            widths
                .iter()
                .map(|w| "-".repeat(*w))
                .collect::<Vec<_>>()
                .join("  ")
        );
        for row in &self.rows {
            let _ = writeln!(out, "{}", fmt_row(row, &widths));
        }
        out
    }

    /// Renders RFC-4180-ish CSV (cells containing commas or quotes are
    /// quoted).
    #[must_use]
    pub fn to_csv(&self) -> String {
        fn escape(cell: &str) -> String {
            if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        }
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{}",
            self.headers
                .iter()
                .map(|h| escape(h))
                .collect::<Vec<_>>()
                .join(",")
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "{}",
                row.iter().map(|c| escape(c)).collect::<Vec<_>>().join(",")
            );
        }
        out
    }

    /// Writes the CSV rendering into `dir` as `<slug(title)>.csv`.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write_csv(&self, dir: &Path) -> io::Result<std::path::PathBuf> {
        std::fs::create_dir_all(dir)?;
        let slug: String = self
            .title
            .chars()
            .map(|c| {
                if c.is_ascii_alphanumeric() {
                    c.to_ascii_lowercase()
                } else {
                    '_'
                }
            })
            .collect();
        let path = dir.join(format!("{slug}.csv"));
        std::fs::write(&path, self.to_csv())?;
        Ok(path)
    }
}

/// Formats a ratio with three decimals.
#[must_use]
pub fn ratio(x: f64) -> String {
    format!("{x:.3}")
}

/// Formats a fraction as a percentage with one decimal.
#[must_use]
pub fn percent(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> Table {
        let mut t = Table::new("Fig. X", &["a", "b"]);
        t.add_row(vec!["1".into(), "long cell".into()]);
        t.add_row(vec!["x,y".into(), "q\"z".into()]);
        t
    }

    #[test]
    fn text_alignment() {
        let text = table().to_text();
        assert!(text.contains("== Fig. X =="));
        assert!(text.contains("long cell"));
        // Header underline present.
        assert!(text.contains("---"));
    }

    #[test]
    fn csv_escaping() {
        let csv = table().to_csv();
        assert!(csv.contains("\"x,y\""));
        assert!(csv.contains("\"q\"\"z\""));
        assert!(csv.starts_with("a,b\n"));
    }

    #[test]
    fn csv_roundtrip_to_disk() {
        let dir = std::env::temp_dir().join("mgpu_experiments_test");
        let path = table().write_csv(&dir).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert_eq!(content, table().to_csv());
        assert!(path
            .file_name()
            .unwrap()
            .to_str()
            .unwrap()
            .starts_with("fig__x"));
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn row_width_checked() {
        let mut t = Table::new("t", &["a", "b"]);
        t.add_row(vec!["only one".into()]);
    }

    #[test]
    fn formatters() {
        assert_eq!(ratio(1.23456), "1.235");
        assert_eq!(percent(0.365), "36.5%");
    }
}
