//! Motivation-section experiments: Table I and Figs. 8–16.

use crate::common::{self, Mode, SEED};
use crate::report::{percent, ratio, Table};
use mgpu_crypto::pad::OtpPad;
use mgpu_secure::PadClass;
use mgpu_system::runner::configs;
use mgpu_types::{ByteSize, Direction, SystemConfig};
use mgpu_workloads::{Benchmark, Trace, TrafficModel};

/// Table I: on-chip OTP storage and entry counts for the `Private`
/// scheme, {4, 8, 16, 32} GPUs × {1×..16×}.
///
/// Analytic: total entries = `gpus × (gpus peers incl. CPU) × 2 dirs × N`;
/// each entry is 705 bits (§IV-D).
#[must_use]
pub fn table1(_mode: Mode) -> Vec<Table> {
    let mut t = Table::new(
        "Table I: Private OTP storage overhead",
        &["gpus", "otp", "entries", "storage"],
    );
    for gpus in [4u64, 8, 16, 32] {
        for mult in [1u64, 2, 4, 8, 16] {
            // Each of the `gpus` GPUs keeps send+recv entries for each of
            // its `gpus` peers (gpus-1 GPUs + the CPU).
            let entries = gpus * gpus * 2 * mult;
            let storage = ByteSize::from_bits(entries * OtpPad::ENTRY_BITS);
            t.add_row(vec![
                gpus.to_string(),
                format!("{mult}x"),
                entries.to_string(),
                storage.to_string(),
            ]);
        }
    }
    vec![t]
}

/// Fig. 8: `Private` slowdown vs OTP buffer multiplier (1×–16×), 4 GPUs.
#[must_use]
pub fn fig08(mode: Mode) -> Vec<Table> {
    let base = SystemConfig::paper_4gpu();
    let mults = [1u32, 2, 4, 8, 16];
    let mut headers: Vec<&str> = vec!["bench"];
    let labels: Vec<String> = mults.iter().map(|m| format!("otp-{m}x")).collect();
    headers.extend(labels.iter().map(String::as_str));
    let mut t = Table::new("Fig. 8: Private vs OTP buffer entries (4 GPUs)", &headers);
    let sweep: Vec<(String, SystemConfig)> = mults
        .iter()
        .map(|&m| (format!("otp-{m}x"), configs::private(&base, m)))
        .collect();
    common::prefetch(&common::table_cells(&base, &sweep, mode), mode);
    let mut columns: Vec<Vec<f64>> = vec![Vec::new(); mults.len()];
    for &bench in mode.suite() {
        let baseline = common::run_baseline(&base, bench, mode);
        let mut row = vec![bench.abbrev().to_string()];
        for (i, &m) in mults.iter().enumerate() {
            let r = common::run(&configs::private(&base, m), bench, mode);
            let n = r.normalized_time(&baseline).unwrap_or(1.0);
            columns[i].push(n);
            row.push(ratio(n));
        }
        t.add_row(row);
    }
    let mut row = vec!["geomean".to_string()];
    for col in &columns {
        row.push(ratio(common::geomean(col)));
    }
    t.add_row(row);
    vec![t]
}

/// Fig. 9: Private vs Shared vs Cached at OTP 4×, 4 GPUs.
#[must_use]
pub fn fig09(mode: Mode) -> Vec<Table> {
    let base = SystemConfig::paper_4gpu();
    let cfgs = vec![
        ("private-4x".to_string(), configs::private(&base, 4)),
        ("shared".to_string(), configs::shared(&base, 4)),
        ("cached-4x".to_string(), configs::cached(&base, 4)),
    ];
    vec![scheme_comparison_table(
        "Fig. 9: prior OTP buffer management schemes (4 GPUs)",
        &cfgs,
        mode,
    )]
}

/// Shared scaffolding for normalized-execution-time tables.
fn scheme_comparison_table(title: &str, cfgs: &[(String, SystemConfig)], mode: Mode) -> Table {
    common::prefetch(&common::table_cells(&cfgs[0].1, cfgs, mode), mode);
    let mut headers: Vec<&str> = vec!["bench"];
    headers.extend(cfgs.iter().map(|(l, _)| l.as_str()));
    let mut t = Table::new(title, &headers);
    let mut columns: Vec<Vec<f64>> = vec![Vec::new(); cfgs.len()];
    for &bench in mode.suite() {
        let baseline = common::run_baseline(&cfgs[0].1, bench, mode);
        let mut row = vec![bench.abbrev().to_string()];
        for (i, (_, cfg)) in cfgs.iter().enumerate() {
            let r = common::run(cfg, bench, mode);
            let n = r.normalized_time(&baseline).unwrap_or(1.0);
            columns[i].push(n);
            row.push(ratio(n));
        }
        t.add_row(row);
    }
    let mut row = vec!["geomean".to_string()];
    for col in &columns {
        row.push(ratio(common::geomean(col)));
    }
    t.add_row(row);
    t
}

/// Fig. 10: OTP hit/partial/miss distribution per scheme and direction
/// (suite aggregate, OTP 4×).
#[must_use]
pub fn fig10(mode: Mode) -> Vec<Table> {
    let base = SystemConfig::paper_4gpu();
    let cfgs = vec![
        ("private".to_string(), configs::private(&base, 4)),
        ("shared".to_string(), configs::shared(&base, 4)),
        ("cached".to_string(), configs::cached(&base, 4)),
    ];
    vec![otp_distribution_table(
        "Fig. 10: OTP latency-hiding distribution (4 GPUs, OTP 4x)",
        &cfgs,
        mode,
    )]
}

/// Shared scaffolding for OTP-distribution tables (also Fig. 22).
pub(crate) fn otp_distribution_table(
    title: &str,
    cfgs: &[(String, SystemConfig)],
    mode: Mode,
) -> Table {
    let mut t = Table::new(
        title,
        &[
            "scheme",
            "send-hit",
            "send-partial",
            "send-miss",
            "recv-hit",
            "recv-partial",
            "recv-miss",
        ],
    );
    let cells: Vec<common::Cell> = cfgs
        .iter()
        .flat_map(|(_, cfg)| mode.suite().iter().map(|&bench| (cfg.clone(), bench)))
        .collect();
    common::prefetch(&cells, mode);
    for (label, cfg) in cfgs {
        let mut otp = mgpu_secure::OtpStats::default();
        for &bench in mode.suite() {
            otp.merge(&common::run(cfg, bench, mode).otp);
        }
        t.add_row(vec![
            label.clone(),
            percent(otp.fraction(Direction::Send, PadClass::Hit)),
            percent(otp.fraction(Direction::Send, PadClass::Partial)),
            percent(otp.fraction(Direction::Send, PadClass::Miss)),
            percent(otp.fraction(Direction::Recv, PadClass::Hit)),
            percent(otp.fraction(Direction::Recv, PadClass::Partial)),
            percent(otp.fraction(Direction::Recv, PadClass::Miss)),
        ]);
    }
    t
}

/// Fig. 11: cumulative overheads — `+SecureCommu` (latency only) then
/// `+Traffic` (metadata bandwidth), Private 4×.
#[must_use]
pub fn fig11(mode: Mode) -> Vec<Table> {
    let base = SystemConfig::paper_4gpu();
    let commu_only = {
        let mut c = configs::private(&base, 4);
        c.security.charge_metadata_traffic = false;
        c
    };
    let cfgs = vec![
        ("+secure-commu".to_string(), commu_only),
        ("+traffic".to_string(), configs::private(&base, 4)),
    ];
    vec![scheme_comparison_table(
        "Fig. 11: secure communication vs metadata traffic (Private 4x)",
        &cfgs,
        mode,
    )]
}

/// Fig. 12: interconnect traffic normalized to the unsecure system,
/// Private 4×, with a metadata breakdown.
#[must_use]
pub fn fig12(mode: Mode) -> Vec<Table> {
    let base = SystemConfig::paper_4gpu();
    let cfg = configs::private(&base, 4);
    let mut t = Table::new(
        "Fig. 12: communication traffic with security metadata (Private 4x)",
        &["bench", "traffic-ratio", "metadata-share"],
    );
    common::prefetch(
        &common::table_cells(&cfg, &[("private-4x".into(), cfg.clone())], mode),
        mode,
    );
    let mut ratios = Vec::new();
    for &bench in mode.suite() {
        let baseline = common::run_baseline(&cfg, bench, mode);
        let r = common::run(&cfg, bench, mode);
        let tr = r.traffic_ratio(&baseline).unwrap_or(1.0);
        ratios.push(tr);
        t.add_row(vec![
            bench.abbrev().to_string(),
            ratio(tr),
            percent(r.metadata_fraction()),
        ]);
    }
    t.add_row(vec![
        "geomean".into(),
        ratio(common::geomean(&ratios)),
        String::new(),
    ]);
    vec![t]
}

/// Fig. 13: send/receive mix over time for matrix multiplication, GPU 1.
#[must_use]
pub fn fig13(mode: Mode) -> Vec<Table> {
    let bench = Benchmark::MatrixMultiplication;
    let count = mode.requests() * 20;
    let model = TrafficModel::new(bench, 4, SEED);
    let trace = Trace::new(model.generate_all(count));
    let window = bench.params().phase_len / 4;
    let timeline = trace.send_recv_timeline(mgpu_types::NodeId::gpu(1), window);
    let mut t = Table::new(
        "Fig. 13: send/recv distribution over time (mm, GPU 1)",
        &["window", "send-blocks", "recv-blocks", "send-share"],
    );
    for (i, (send, recv)) in timeline.iter().enumerate().take(24) {
        let total = send + recv;
        let share = if total == 0 {
            0.0
        } else {
            *send as f64 / total as f64
        };
        t.add_row(vec![
            i.to_string(),
            send.to_string(),
            recv.to_string(),
            percent(share),
        ]);
    }
    vec![t]
}

/// Fig. 14: destination decomposition of GPU 1's pulls over time (mm).
#[must_use]
pub fn fig14(mode: Mode) -> Vec<Table> {
    let bench = Benchmark::MatrixMultiplication;
    let count = mode.requests() * 20;
    let model = TrafficModel::new(bench, 4, SEED);
    let trace = Trace::new(model.generate_for(mgpu_types::NodeId::gpu(1), count));
    let window = bench.params().phase_len / 2;
    let timeline = trace.destination_timeline(mgpu_types::NodeId::gpu(1), window);
    let mut t = Table::new(
        "Fig. 14: receive-source distribution over time (mm, GPU 1)",
        &["window", "cpu", "gpu2", "gpu3", "gpu4"],
    );
    for (i, counts) in timeline.iter().enumerate().take(16) {
        let total: u64 = counts.values().sum();
        let share = |n: mgpu_types::NodeId| -> String {
            if total == 0 {
                "0.0%".into()
            } else {
                percent(*counts.get(&n).unwrap_or(&0) as f64 / total as f64)
            }
        };
        t.add_row(vec![
            i.to_string(),
            share(mgpu_types::NodeId::CPU),
            share(mgpu_types::NodeId::gpu(2)),
            share(mgpu_types::NodeId::gpu(3)),
            share(mgpu_types::NodeId::gpu(4)),
        ]);
    }
    vec![t]
}

/// Figs. 15/16: distribution of cycles for 16 (respectively 32) blocks to
/// accumulate on a directed pair, per benchmark, paper bucket edges.
#[must_use]
pub fn burstiness(mode: Mode, group: usize) -> Vec<Table> {
    let figure = if group == 16 { "Fig. 15" } else { "Fig. 16" };
    let mut t = Table::new(
        format!("{figure}: cycles until {group} blocks accumulate"),
        &[
            "bench",
            "[0,40)",
            "[40,160)",
            "[160,640)",
            "[640,2560)",
            "[2560,inf)",
            "<160",
        ],
    );
    let mut fast_sum = 0.0;
    let mut n = 0.0;
    for &bench in mode.suite() {
        let model = TrafficModel::new(bench, 4, SEED);
        let trace = Trace::new(model.generate_all(mode.requests() * 4));
        let hist = trace.accumulation_histogram(group);
        let fractions = hist.fractions();
        let fast = trace.accumulation_fraction_within(group, 160);
        fast_sum += fast;
        n += 1.0;
        let mut row = vec![bench.abbrev().to_string()];
        row.extend(fractions.iter().map(|&f| percent(f)));
        row.push(percent(fast));
        t.add_row(row);
    }
    let mut row = vec!["average".to_string()];
    row.extend(std::iter::repeat_n(String::new(), 5));
    row.push(percent(fast_sum / n));
    t.add_row(row);
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_matches_paper_corners() {
        let t = &table1(Mode::Quick)[0];
        let csv = t.to_csv();
        // 4 GPUs 1x: 32 entries, 2.75 KB; 32 GPUs 16x: 32768 entries.
        assert!(csv.contains("4,1x,32,2.75 KB"), "{csv}");
        assert!(csv.contains("32,16x,32768"), "{csv}");
        assert_eq!(t.len(), 20);
    }

    #[test]
    fn fig08_degradation_shrinks_with_more_buffers() {
        let t = &fig08(Mode::Quick)[0];
        let csv = t.to_csv();
        let geo: Vec<f64> = csv
            .lines()
            .last()
            .unwrap()
            .split(',')
            .skip(1)
            .map(|v| v.parse().unwrap())
            .collect();
        assert!(
            geo[0] > geo[4],
            "1x {0} should exceed 16x {1}",
            geo[0],
            geo[4]
        );
        assert!(geo.iter().all(|&g| g >= 0.99));
    }

    #[test]
    fn fig09_shared_is_worst() {
        let t = &fig09(Mode::Quick)[0];
        let last = t.to_csv().lines().last().unwrap().to_string();
        let vals: Vec<f64> = last
            .split(',')
            .skip(1)
            .map(|v| v.parse().unwrap())
            .collect();
        let (private, shared, cached) = (vals[0], vals[1], vals[2]);
        assert!(shared > private, "shared {shared} <= private {private}");
        assert!(shared > cached, "shared {shared} <= cached {cached}");
    }

    #[test]
    fn fig11_traffic_adds_overhead() {
        let t = &fig11(Mode::Quick)[0];
        let last = t.to_csv().lines().last().unwrap().to_string();
        let vals: Vec<f64> = last
            .split(',')
            .skip(1)
            .map(|v| v.parse().unwrap())
            .collect();
        assert!(
            vals[1] >= vals[0],
            "+traffic {} < +secure-commu {}",
            vals[1],
            vals[0]
        );
    }

    #[test]
    fn fig12_ratio_in_plausible_band() {
        let t = &fig12(Mode::Quick)[0];
        let last = t.to_csv().lines().last().unwrap().to_string();
        let geo: f64 = last.split(',').nth(1).unwrap().parse().unwrap();
        // Paper: ~1.365 average.
        assert!(geo > 1.2 && geo < 1.55, "traffic ratio {geo}");
    }

    #[test]
    fn fig13_has_varying_mix() {
        let t = &fig13(Mode::Quick)[0];
        assert!(t.len() >= 4);
    }

    #[test]
    fn burstiness_sixteen_mostly_fast() {
        let t = &burstiness(Mode::Quick, 16)[0];
        let last = t.to_csv().lines().last().unwrap().to_string();
        let avg: f64 = last
            .rsplit(',')
            .next()
            .unwrap()
            .trim_end_matches('%')
            .parse()
            .unwrap();
        // Paper: 69.2% of 16-block groups within 160 cycles.
        assert!(avg > 40.0, "average fast fraction {avg}%");
    }
}
