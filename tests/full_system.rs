//! Cross-crate integration tests: full-system simulations exercising the
//! workload models, the simulator substrate and every OTP scheme together.

use secure_mgpu::system::runner::{compare_schemes, configs, run_with_baseline};
use secure_mgpu::system::Simulation;
use secure_mgpu::types::{Direction, OtpSchemeKind, SystemConfig};
use secure_mgpu::workloads::Benchmark;

const REQS: usize = 400;
const SEED: u64 = 42;

fn geomean(xs: &[f64]) -> f64 {
    (xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp()
}

/// Normalized times for a reduced suite under each labeled config.
fn suite_geomeans(cfgs: &[(String, SystemConfig)]) -> Vec<f64> {
    let suite = [
        Benchmark::MatrixTranspose,
        Benchmark::Spmv,
        Benchmark::MatrixMultiplication,
        Benchmark::Kmeans,
    ];
    let mut columns = vec![Vec::new(); cfgs.len()];
    for bench in suite {
        for (i, r) in compare_schemes(bench, cfgs, REQS, SEED).iter().enumerate() {
            columns[i].push(r.normalized_time);
        }
    }
    columns.iter().map(|c| geomean(c)).collect()
}

#[test]
fn simulations_are_deterministic_end_to_end() {
    let cfg = configs::batching(&SystemConfig::paper_4gpu(), 4);
    let a = Simulation::new(cfg.clone(), Benchmark::PageRank, SEED).run_for_requests(REQS);
    let b = Simulation::new(cfg, Benchmark::PageRank, SEED).run_for_requests(REQS);
    assert_eq!(a.total_cycles, b.total_cycles);
    assert_eq!(a.traffic.total(), b.traffic.total());
    assert_eq!(a.acks_sent, b.acks_sent);
    assert_eq!(a.pads_issued, b.pads_issued);
}

#[test]
fn secure_never_beats_unsecure() {
    let base = SystemConfig::paper_4gpu();
    for kind in OtpSchemeKind::SECURE {
        let mut cfg = base.clone();
        cfg.security.scheme = kind;
        for bench in [Benchmark::MatrixTranspose, Benchmark::Fir] {
            let (secure, baseline) = run_with_baseline(&cfg, bench, REQS, SEED);
            assert!(
                secure.total_cycles >= baseline.total_cycles,
                "{kind} on {bench}: {} < {}",
                secure.total_cycles,
                baseline.total_cycles
            );
        }
    }
}

#[test]
fn paper_scheme_ordering_holds_on_average() {
    let base = SystemConfig::paper_4gpu();
    let cfgs = vec![
        ("private-4x".to_string(), configs::private(&base, 4)),
        ("private-16x".to_string(), configs::private(&base, 16)),
        ("shared".to_string(), configs::shared(&base, 4)),
        ("dynamic-4x".to_string(), configs::dynamic(&base, 4)),
        ("batching-4x".to_string(), configs::batching(&base, 4)),
    ];
    let g = suite_geomeans(&cfgs);
    let (p4, p16, shared, dynamic, batching) = (g[0], g[1], g[2], g[3], g[4]);
    // Shared is by far the worst (paper Fig. 9).
    assert!(shared > p4 * 1.2, "shared {shared} vs private {p4}");
    // More buffers help (paper Fig. 8).
    assert!(p16 < p4, "16x {p16} vs 4x {p4}");
    // The proposed techniques beat Private (paper Fig. 21).
    assert!(dynamic < p4, "dynamic {dynamic} vs private {p4}");
    // Batching matches or beats Dynamic (1% tolerance: short runs are
    // chaotic around scheduling bifurcations).
    assert!(
        batching <= dynamic * 1.01,
        "batching {batching} vs dynamic {dynamic}"
    );
}

#[test]
fn metadata_traffic_band_matches_paper() {
    // Paper Fig. 12: ~36.5% average traffic increase for Private.
    let base = configs::private(&SystemConfig::paper_4gpu(), 4);
    let mut ratios = Vec::new();
    for bench in [
        Benchmark::MatrixTranspose,
        Benchmark::Fft,
        Benchmark::Kmeans,
    ] {
        let (secure, baseline) = run_with_baseline(&base, bench, REQS, SEED);
        ratios.push(
            secure
                .traffic_ratio(&baseline)
                .expect("non-empty workload moves baseline bytes"),
        );
    }
    let g = geomean(&ratios);
    assert!(g > 1.25 && g < 1.5, "traffic ratio {g}");
}

#[test]
fn batching_cuts_traffic_and_acks() {
    let base = SystemConfig::paper_4gpu();
    for bench in [Benchmark::MatrixTranspose, Benchmark::MatrixMultiplication] {
        let (dynamic, _) = run_with_baseline(&configs::dynamic(&base, 4), bench, REQS, SEED);
        let (batched, _) = run_with_baseline(&configs::batching(&base, 4), bench, REQS, SEED);
        assert!(
            batched.traffic.total() < dynamic.traffic.total(),
            "{bench}: batched {} >= dynamic {}",
            batched.traffic.total(),
            dynamic.traffic.total()
        );
        assert!(batched.acks_sent * 4 < dynamic.acks_sent, "{bench}: acks");
        assert!(batched.mean_batch_occupancy > 2.0, "{bench}: occupancy");
    }
}

#[test]
fn overheads_grow_with_gpu_count() {
    // Paper §V-D: Private's degradation rises from 19.5% (4 GPUs) toward
    // 32.1% (16 GPUs).
    let bench = Benchmark::PageRank;
    let mut degradations = Vec::new();
    for cfg in [
        SystemConfig::paper_4gpu(),
        SystemConfig::paper_8gpu(),
        SystemConfig::paper_16gpu(),
    ] {
        let private = configs::private(&cfg, 4);
        let (secure, baseline) = run_with_baseline(&private, bench, REQS, SEED);
        degradations.push(
            secure
                .normalized_time(&baseline)
                .expect("non-empty workload takes baseline cycles"),
        );
    }
    assert!(
        degradations[2] > degradations[0],
        "16-GPU {:.3} should exceed 4-GPU {:.3}",
        degradations[2],
        degradations[0]
    );
}

#[test]
fn ours_beats_private_at_scale() {
    // Paper: 17.5% improvement vs Private at 16 GPUs.
    let cfg16 = SystemConfig::paper_16gpu();
    let bench = Benchmark::Spmv;
    let (private, baseline) = run_with_baseline(&configs::private(&cfg16, 4), bench, REQS, SEED);
    let (ours, _) = run_with_baseline(&configs::batching(&cfg16, 4), bench, REQS, SEED);
    let p = private
        .normalized_time(&baseline)
        .expect("non-zero baseline");
    let o = ours.normalized_time(&baseline).expect("non-zero baseline");
    assert!(o < p, "ours {o} should beat private {p} at 16 GPUs");
}

#[test]
fn otp_stats_cover_every_block() {
    let cfg = configs::cached(&SystemConfig::paper_4gpu(), 4);
    let report = Simulation::new(cfg, Benchmark::Atax, SEED).run_for_requests(REQS);
    assert_eq!(report.otp.total(Direction::Send), report.blocks);
    assert_eq!(report.otp.total(Direction::Recv), report.blocks);
    assert!(report.otp.hidden_fraction(Direction::Recv) > 0.0);
}

#[test]
fn aes_latency_sensitivity_is_bounded_for_ours() {
    // Paper Fig. 26: reducing AES latency 40 -> 10 helps, but only by a
    // few points on average — most of the residual is elsewhere.
    let suite = [
        Benchmark::MatrixTranspose,
        Benchmark::Kmeans,
        Benchmark::Fir,
    ];
    let mut geos = Vec::new();
    for cycles in [10u64, 40] {
        let mut base = SystemConfig::paper_4gpu();
        base.security.aes_latency = secure_mgpu::types::Duration::cycles(cycles);
        let cfg = configs::batching(&base, 4);
        let mut times = Vec::new();
        for bench in suite {
            let (secure, baseline) = run_with_baseline(&cfg, bench, REQS, SEED);
            times.push(
                secure
                    .normalized_time(&baseline)
                    .expect("non-zero baseline"),
            );
        }
        geos.push(geomean(&times));
    }
    assert!(
        geos[0] <= geos[1] + 1e-9,
        "faster AES should not hurt: {geos:?}"
    );
    assert!(geos[1] - geos[0] < 0.2, "sensitivity too strong: {geos:?}");
}

#[test]
fn address_trace_workload_drives_the_full_stack() {
    use secure_mgpu::types::NodeId;
    use secure_mgpu::workloads::address_mode::{AddressStreamParams, AddressTraceWorkload};
    let mut wl = AddressTraceWorkload::new(4, AddressStreamParams::default(), 9);
    let mut requests = Vec::new();
    for gpu in 1..=4u16 {
        requests.extend(wl.run(NodeId::gpu(gpu), 20_000));
    }
    assert!(!requests.is_empty());
    let cfg = configs::batching(&SystemConfig::paper_4gpu(), 4);
    let report = Simulation::new(cfg, Benchmark::Kmeans, SEED).run_trace(requests);
    assert!(report.total_cycles.as_u64() > 0);
    assert!(report.blocks >= report.requests);
}
