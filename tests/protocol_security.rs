//! Adversarial integration tests on the functional secure channel:
//! seeded random traffic with injected attacks across a whole node mesh,
//! all running over the workspace's from-scratch AES-GCM.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use secure_mgpu::secure::channel::{Endpoint, WireBlock};
use secure_mgpu::secure::key_exchange::KeyExchange;
use secure_mgpu::types::{MgpuError, NodeId};
use std::collections::BTreeMap;

fn mesh(gpus: u16) -> BTreeMap<NodeId, Endpoint> {
    let kx = KeyExchange::boot(*b"integration-key!");
    NodeId::all(gpus)
        .map(|n| (n, Endpoint::new(n, gpus, &kx)))
        .collect()
}

#[test]
fn random_mesh_traffic_all_verifies() {
    let mut nodes = mesh(4);
    let ids: Vec<NodeId> = NodeId::all(4).collect();
    let mut rng = StdRng::seed_from_u64(7);
    for i in 0..500u32 {
        let src = ids[rng.random_range(0..ids.len())];
        let dst = loop {
            let d = ids[rng.random_range(0..ids.len())];
            if d != src {
                break d;
            }
        };
        let mut payload = [0u8; 64];
        payload[..4].copy_from_slice(&i.to_be_bytes());
        let wire = nodes.get_mut(&src).unwrap().seal_block(dst, &payload);
        let (plain, ack) = nodes.get_mut(&dst).unwrap().open_block(&wire).unwrap();
        assert_eq!(plain, payload);
        nodes.get_mut(&src).unwrap().accept_ack(&ack).unwrap();
    }
    for node in nodes.values() {
        assert_eq!(node.outstanding_acks(), 0);
    }
}

#[test]
fn every_random_tamper_is_detected() {
    let mut nodes = mesh(2);
    let mut rng = StdRng::seed_from_u64(11);
    for _ in 0..200 {
        let wire = nodes
            .get_mut(&NodeId::gpu(1))
            .unwrap()
            .seal_block(NodeId::gpu(2), &[0x77; 64]);
        // Tamper with a random byte of ciphertext or MAC.
        let mut bad: WireBlock = wire.clone();
        if rng.random_bool(0.5) {
            let idx = rng.random_range(0..bad.ciphertext.len());
            bad.ciphertext[idx] ^= 1u8 << rng.random_range(0u32..8);
        } else if let Some(mac) = bad.mac.as_mut() {
            mac[rng.random_range(0usize..8)] ^= 1u8 << rng.random_range(0u32..8);
        }
        match nodes.get_mut(&NodeId::gpu(2)).unwrap().open_block(&bad) {
            Err(MgpuError::AuthenticationFailed { .. }) => {}
            other => panic!("tamper survived: {other:?}"),
        }
        // The genuine block still goes through afterwards.
        let (_, ack) = nodes
            .get_mut(&NodeId::gpu(2))
            .unwrap()
            .open_block(&wire)
            .expect("genuine block accepted after failed attack");
        nodes
            .get_mut(&NodeId::gpu(1))
            .unwrap()
            .accept_ack(&ack)
            .unwrap();
    }
}

#[test]
fn batches_survive_random_permutations() {
    let mut nodes = mesh(2);
    let mut rng = StdRng::seed_from_u64(13);
    for round in 0..40u8 {
        let n = rng.random_range(2..=16usize);
        let blocks: Vec<[u8; 64]> = (0..n).map(|i| [(i as u8) ^ round; 64]).collect();
        let (mut wires, trailer) = nodes
            .get_mut(&NodeId::gpu(1))
            .unwrap()
            .seal_batch(NodeId::gpu(2), &blocks);
        // Shuffle delivery order.
        for i in (1..wires.len()).rev() {
            wires.swap(i, rng.random_range(0..=i));
        }
        let trailer_first = rng.random_bool(0.5);
        let receiver = nodes.get_mut(&NodeId::gpu(2)).unwrap();
        let mut ack = None;
        if trailer_first {
            assert!(receiver.accept_trailer(&trailer).unwrap().is_none());
        }
        for wire in &wires {
            let (_, got) = receiver.open_batched_block(wire).unwrap();
            if let Some(a) = got {
                ack = Some(a);
            }
        }
        if !trailer_first {
            ack = receiver.accept_trailer(&trailer).unwrap();
        }
        let ack = ack.expect("batch must verify");
        nodes
            .get_mut(&NodeId::gpu(1))
            .unwrap()
            .accept_ack(&ack)
            .unwrap();
    }
}

#[test]
fn replayed_batches_are_rejected() {
    let mut nodes = mesh(2);
    let blocks: Vec<[u8; 64]> = (0..4u8).map(|i| [i; 64]).collect();
    let (wires, trailer) = nodes
        .get_mut(&NodeId::gpu(1))
        .unwrap()
        .seal_batch(NodeId::gpu(2), &blocks);
    {
        let receiver = nodes.get_mut(&NodeId::gpu(2)).unwrap();
        for wire in &wires {
            receiver.open_batched_block(wire).unwrap();
        }
        receiver
            .accept_trailer(&trailer)
            .unwrap()
            .expect("verified");
    }
    // Replay the whole batch: the trailer's batch id is stale.
    let receiver = nodes.get_mut(&NodeId::gpu(2)).unwrap();
    match receiver.accept_trailer(&trailer) {
        Err(MgpuError::ReplayDetected { .. }) => {}
        other => panic!("batch replay survived: {other:?}"),
    }
}

#[test]
fn cross_pair_isolation() {
    // A block sealed for GPU2 must not open at GPU3 (different pair key
    // and AAD), even though both share the boot exchange.
    let mut nodes = mesh(3);
    let wire = nodes
        .get_mut(&NodeId::gpu(1))
        .unwrap()
        .seal_block(NodeId::gpu(2), &[9; 64]);
    let mut redirected = wire;
    redirected.receiver = NodeId::gpu(3);
    match nodes
        .get_mut(&NodeId::gpu(3))
        .unwrap()
        .open_block(&redirected)
    {
        Err(MgpuError::AuthenticationFailed { .. }) => {}
        other => panic!("cross-pair redirect survived: {other:?}"),
    }
}
